"""Emulator-design cost model (the landscape of paper Fig. 1).

Figure 1 of the paper situates the proposed emulator against the published
ones on a plane of spatial resolution versus computational cost, using the
scalings

* axially symmetric (longitude-stationary) designs: ``O(L^3 T + L^4)``;
* longitudinally anisotropic designs (this work):   ``O(L^4 T + L^6)``;

where ``T`` counts temporal data points and ``L`` parameterises the spatial
resolution.  The proposed emulator is anisotropic but reaches 3.5 km /
hourly resolution by moving the ``O(L^6)`` Cholesky to exascale machines —
a spatio-temporal resolution improvement of 28 x 8,760 = 245,280 over the
prior state of the art.  This module evaluates those cost curves, maps
resolutions to band-limits, and carries a small catalogue of the existing
emulators reviewed by the figure so the benchmark can regenerate the
landscape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sht.grid import bandlimit_to_resolution, resolution_to_bandlimit

__all__ = [
    "EmulatorDesignPoint",
    "EXISTING_EMULATORS",
    "THIS_WORK",
    "axisymmetric_cost",
    "anisotropic_cost",
    "design_cost",
    "resolution_factor",
    "cost_landscape",
]

KM_PER_DEGREE = 111.19


@dataclass(frozen=True)
class EmulatorDesignPoint:
    """One emulator design: spatial/temporal resolution and model class."""

    name: str
    spatial_resolution_km: float
    temporal_points_per_year: float
    axisymmetric: bool
    reference: str = ""

    @property
    def spatial_resolution_deg(self) -> float:
        """Resolution in degrees at the equator."""
        return self.spatial_resolution_km / KM_PER_DEGREE

    @property
    def bandlimit(self) -> int:
        """Spherical-harmonic band-limit matching the spatial resolution."""
        return resolution_to_bandlimit(self.spatial_resolution_deg)

    def cost(self, n_years: float = 35.0) -> float:
        """Design cost in floating-point operations for an ``n_years`` record."""
        t = self.temporal_points_per_year * n_years
        return design_cost(self.bandlimit, t, axisymmetric=self.axisymmetric)


#: Emulators reviewed in Fig. 1 (resolutions/temporal scales as reported in
#: the paper's Section II-A review; references are the paper's citation
#: numbers).
EXISTING_EMULATORS: tuple[EmulatorDesignPoint, ...] = (
    EmulatorDesignPoint("Castruccio & Stein 2013", 500.0, 1.0, True, "[16]"),
    EmulatorDesignPoint("Castruccio et al. 2014", 250.0, 1.0, False, "[17]"),
    EmulatorDesignPoint("Holden et al. 2015", 500.0, 1.0, False, "[18]"),
    EmulatorDesignPoint("Link et al. 2019 (fldgen)", 250.0, 1.0, False, "[19]"),
    EmulatorDesignPoint("Jeong et al. 2019", 200.0, 12.0, True, "[21]"),
    EmulatorDesignPoint("Huang et al. 2023", 100.0, 12.0, True, "[22]"),
    EmulatorDesignPoint("Song et al. 2024", 100.0, 365.0, True, "[23]"),
)

#: The proposed emulator: 3.5 km, hourly, longitudinally anisotropic.
THIS_WORK = EmulatorDesignPoint(
    "This work (exascale emulator)", 3.5, 8760.0, False, "SC24"
)


def axisymmetric_cost(lmax: int, n_time: float) -> float:
    """Design cost of an axially symmetric emulator, ``O(L^3 T + L^4)``."""
    l = float(lmax)
    return l ** 3 * float(n_time) + l ** 4


def anisotropic_cost(lmax: int, n_time: float) -> float:
    """Design cost of a longitudinally anisotropic emulator, ``O(L^4 T + L^6)``."""
    l = float(lmax)
    return l ** 4 * float(n_time) + l ** 6


def design_cost(lmax: int, n_time: float, axisymmetric: bool) -> float:
    """Dispatch to the appropriate cost law."""
    return (
        axisymmetric_cost(lmax, n_time)
        if axisymmetric
        else anisotropic_cost(lmax, n_time)
    )


def resolution_factor(
    new: EmulatorDesignPoint = THIS_WORK,
    baseline_spatial_km: float = 100.0,
    baseline_temporal_per_year: float = 1.0,
) -> dict:
    """Spatio-temporal resolution improvement factors (the 245,280 figure).

    The paper compares 3.5 km hourly against the best published 100 km
    daily/annual emulators: 28x spatially and 8,760x temporally (hourly
    versus annual).
    """
    spatial = baseline_spatial_km / new.spatial_resolution_km
    temporal = new.temporal_points_per_year / baseline_temporal_per_year
    return {
        "spatial_factor": spatial,
        "temporal_factor": temporal,
        "combined_factor": spatial * temporal,
    }


def cost_landscape(
    resolutions_km: np.ndarray | list[float],
    n_years: float = 35.0,
    temporal_points_per_year: float = 365.0,
) -> dict:
    """Cost curves across spatial resolutions for both model classes.

    Returns a dict with the resolutions, matching band-limits, and the two
    cost curves in flops — the data behind Fig. 1's diagonal cost contours.
    """
    res = np.asarray(resolutions_km, dtype=np.float64)
    bandlimits = np.array(
        [resolution_to_bandlimit(r / KM_PER_DEGREE) for r in res], dtype=np.int64
    )
    t = n_years * temporal_points_per_year
    return {
        "resolution_km": res,
        "bandlimit": bandlimits,
        "axisymmetric_flops": np.array([axisymmetric_cost(l, t) for l in bandlimits]),
        "anisotropic_flops": np.array([anisotropic_cost(l, t) for l in bandlimits]),
        "n_time": t,
    }


def bandlimit_resolution_km(lmax: int) -> float:
    """Approximate spatial resolution in km for a band-limit."""
    return bandlimit_to_resolution(lmax) * KM_PER_DEGREE
