"""Configuration of the climate emulator."""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

__all__ = ["EmulatorConfig"]


@dataclass(frozen=True)
class EmulatorConfig:
    """Hyper-parameters of the emulator fit (paper Sections III-A, IV-A).

    Parameters
    ----------
    lmax:
        Spherical-harmonic band-limit ``L`` of the stochastic model.  The
        paper uses ``L = 720`` for native ERA5 and up to ``L = 5219`` for
        the upsampled experiments; offline reproductions use much smaller
        values.
    n_harmonics:
        Number ``K`` of periodic harmonics in the mean trend (the paper
        uses ``K = 5``).
    var_order:
        Order ``P`` of the diagonal vector autoregression on the spectral
        coefficients (the paper uses ``P = 3``).
    rho_grid:
        Candidate values of the distributed-lag decay ``rho`` profiled over
        during the per-location trend fit.
    tile_size:
        Tile edge length of the mixed-precision Cholesky factorisation of
        the innovation covariance.
    precision_variant:
        ``"DP"``, ``"DP/SP"``, ``"DP/SP/HP"`` or ``"DP/HP"`` — the tile
        precision policy used for the covariance factorisation.  Resolved
        by name through
        :data:`repro.linalg.policies.CHOLESKY_VARIANTS`, so any policy
        registered there is accepted.
    sht_method:
        Name of the spherical-harmonic-transform backend, resolved through
        :data:`repro.sht.backends.SHT_BACKENDS` (``"fast"`` is the paper's
        FFT/Wigner transform; ``"direct"`` the summation reference).
    covariance_jitter:
        Relative ridge added to the empirical covariance when
        ``R (T - P) < L^2`` leaves it rank deficient (paper Section
        III-A.3), and to stabilise aggressive precision variants.
    use_distributed_lag:
        Include the ``beta_2`` distributed-lag regressor; disabling it
        reduces the trend model to intercept + current forcing + harmonics
        (useful for short test records where the lag term is unidentified).
    """

    lmax: int = 16
    n_harmonics: int = 2
    var_order: int = 2
    rho_grid: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    tile_size: int = 32
    precision_variant: str = "DP"
    covariance_jitter: float = 1e-6
    use_distributed_lag: bool = True
    sht_method: str = "fast"

    def __post_init__(self) -> None:
        if self.lmax < 1:
            raise ValueError("lmax must be >= 1")
        if self.n_harmonics < 0:
            raise ValueError("n_harmonics must be >= 0")
        if self.var_order < 0:
            raise ValueError("var_order must be >= 0")
        if self.tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if not all(0.0 <= r < 1.0 for r in self.rho_grid):
            raise ValueError("rho values must lie in [0, 1)")

    @property
    def n_coeffs(self) -> int:
        """Size of the spectral state vector, ``L**2``."""
        return self.lmax * self.lmax

    def trend_design_size(self) -> int:
        """Number of regressors in the mean-trend design matrix."""
        base = 2 + (1 if self.use_distributed_lag else 0)
        return base + 2 * self.n_harmonics

    def describe(self) -> dict:
        """A plain-dict summary (used by reports and examples)."""
        return {
            "lmax": self.lmax,
            "n_coeffs": self.n_coeffs,
            "n_harmonics": self.n_harmonics,
            "var_order": self.var_order,
            "tile_size": self.tile_size,
            "precision_variant": self.precision_variant,
            "covariance_jitter": self.covariance_jitter,
            "rho_grid": list(self.rho_grid),
            "use_distributed_lag": self.use_distributed_lag,
            "sht_method": self.sht_method,
        }

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-able dict from which :meth:`from_dict` rebuilds the config."""
        return self.describe()

    @classmethod
    def from_dict(cls, data: dict) -> "EmulatorConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Derived or unknown keys (e.g. ``n_coeffs``) are ignored so configs
        saved by newer builds with extra reporting fields still load.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in dict(data).items() if k in known}
        if "rho_grid" in kwargs:
            kwargs["rho_grid"] = tuple(float(r) for r in kwargs["rho_grid"])
        return cls(**kwargs)
