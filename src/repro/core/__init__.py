"""The climate emulator (the paper's primary contribution).

The emulator decomposes spatio-temporal climate data as

``y_t^{(r)}(theta, phi) = m_t(theta, phi) + sigma(theta, phi) Z_t^{(r)}(theta, phi)``

(Eq. 1), with a deterministic distributed-lag mean trend ``m_t`` (Eq. 2), a
spatially varying scale ``sigma``, and a stochastic component ``Z_t``
modelled in the spherical-harmonic domain with a diagonal vector
autoregression whose innovation covariance is estimated empirically (Eq. 9)
and factorised with the mixed-precision tile Cholesky.

Modules
-------
* :mod:`repro.core.config` — configuration dataclass.
* :mod:`repro.core.trend` — the distributed-lag + harmonic mean model and
  its per-location profile fit.
* :mod:`repro.core.scale` — the scale field ``sigma``.
* :mod:`repro.core.var` — the diagonal VAR(P) in coefficient space.
* :mod:`repro.core.spectral_model` — the spectral stochastic model (SHT,
  VAR, innovation covariance, Cholesky).
* :mod:`repro.core.generator` — emulation generation (Section III-B).
* :mod:`repro.core.emulator` — the end-to-end :class:`ClimateEmulator` API.
* :mod:`repro.core.window` — windowed (lat/lon) extraction from emulated
  chunks, used by the serving layer.
* :mod:`repro.core.complexity` — the emulator-design cost model behind
  Fig. 1.
"""

from repro.core.config import EmulatorConfig
from repro.core.trend import MeanTrendModel, TrendFit
from repro.core.scale import ScaleField
from repro.core.var import DiagonalVAR
from repro.core.spectral_model import SpectralStochasticModel
from repro.core.generator import EmulationGenerator
from repro.core.emulator import ClimateEmulator
from repro.core.window import SpatialWindow

__all__ = [
    "ClimateEmulator",
    "DiagonalVAR",
    "EmulationGenerator",
    "EmulatorConfig",
    "MeanTrendModel",
    "ScaleField",
    "SpatialWindow",
    "SpectralStochasticModel",
    "TrendFit",
]
