"""The spatially varying scale field ``sigma(theta, phi)`` of Eq. (1).

After removing the mean trend, the residual variance still varies strongly
in space (land versus ocean, tropics versus poles).  The emulator therefore
standardises the residuals by a per-location scale before the spectral
modelling, and multiplies it back in when generating emulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ScaleField"]


@dataclass
class ScaleField:
    """Per-location standard deviation of the detrended residuals.

    Parameters
    ----------
    sigma:
        Scale field with the spatial grid shape; values are floored at
        ``floor`` to keep the standardisation well defined over regions
        with (near) zero residual variance.
    """

    sigma: np.ndarray
    floor: float = 1e-8

    def __post_init__(self) -> None:
        self.sigma = np.maximum(np.asarray(self.sigma, dtype=np.float64), self.floor)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_residuals(cls, residuals: np.ndarray, floor: float = 1e-8) -> "ScaleField":
        """Estimate the scale from residual fields ``(R, T, ntheta, nphi)``.

        The estimator pools ensemble members and time steps, matching the
        paper's assumption that ``sigma`` is shared across ensembles.
        """
        residuals = np.asarray(residuals, dtype=np.float64)
        if residuals.ndim == 3:
            residuals = residuals[None, ...]
        if residuals.ndim != 4:
            raise ValueError("residuals must have shape (R, T, ntheta, nphi)")
        sigma = residuals.std(axis=(0, 1), ddof=1)
        return cls(sigma=sigma, floor=floor)

    # ------------------------------------------------------------------ #
    def standardize(self, residuals: np.ndarray) -> np.ndarray:
        """Divide residual fields by the scale (broadcast over leading axes)."""
        return np.asarray(residuals, dtype=np.float64) / self.sigma

    def unstandardize(self, fields: np.ndarray) -> np.ndarray:
        """Multiply standardised fields by the scale."""
        return np.asarray(fields, dtype=np.float64) * self.sigma

    @property
    def shape(self) -> tuple[int, ...]:
        """Spatial shape of the field."""
        return self.sigma.shape

    def summary(self) -> dict:
        """Min / mean / max of the scale field (reporting helper)."""
        return {
            "min": float(self.sigma.min()),
            "mean": float(self.sigma.mean()),
            "max": float(self.sigma.max()),
        }

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Arrays and metadata from which :meth:`from_state` rebuilds the field."""
        return {
            "sigma": np.asarray(self.sigma, dtype=np.float64),
            "floor": float(self.floor),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ScaleField":
        """Rebuild a scale field from :meth:`state_dict` output."""
        return cls(
            sigma=np.asarray(state["sigma"], dtype=np.float64),
            floor=float(state["floor"]),
        )
