"""Ensemble container for gridded spatio-temporal climate data.

The emulator consumes data organised exactly as in the paper's Section
II-B: ``y^{(r)}_t(theta_i, phi_j)`` for ensemble members ``r = 1..R``, time
points ``t = 1..T`` and an ``N_theta x N_phi`` spatial grid, together with
the annual radiative-forcing trajectory the mean-trend model regresses on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sht.grid import Grid

__all__ = ["ClimateEnsemble"]


@dataclass
class ClimateEnsemble:
    """A simulation ensemble with its coordinates and forcing.

    Parameters
    ----------
    data:
        Array of shape ``(R, T, ntheta, nphi)`` holding the fields (Kelvin
        for temperature).
    grid:
        Spatial grid.
    forcing_annual:
        Annual radiative forcing, length ``ceil(T / steps_per_year)``.
    steps_per_year:
        Temporal resolution ``tau`` of Eq. (2): 12 for monthly, 365 for
        daily, 8760 for hourly (tests use smaller synthetic values).
    start_year:
        Calendar year of the first time step (metadata only).
    """

    data: np.ndarray
    grid: Grid
    forcing_annual: np.ndarray
    steps_per_year: int
    start_year: int = 1940
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.ndim != 4:
            raise ValueError("data must have shape (R, T, ntheta, nphi)")
        if self.data.shape[2:] != self.grid.shape:
            raise ValueError(
                f"data spatial shape {self.data.shape[2:]} does not match grid {self.grid.shape}"
            )
        if self.steps_per_year < 1:
            raise ValueError("steps_per_year must be positive")
        needed_years = int(np.ceil(self.n_times / self.steps_per_year))
        if len(self.forcing_annual) < needed_years:
            raise ValueError(
                f"forcing covers {len(self.forcing_annual)} years but data spans {needed_years}"
            )

    # ------------------------------------------------------------------ #
    # Shape helpers
    # ------------------------------------------------------------------ #
    @property
    def n_ensemble(self) -> int:
        """Number of ensemble members ``R``."""
        return self.data.shape[0]

    @property
    def n_times(self) -> int:
        """Number of time steps ``T``."""
        return self.data.shape[1]

    @property
    def n_years(self) -> float:
        """Length of the record in years."""
        return self.n_times / self.steps_per_year

    @property
    def n_data_points(self) -> int:
        """Total data points ``R * T * N_theta * N_phi`` (paper's headline counts)."""
        return int(np.prod(self.data.shape))

    def forcing_per_step(self) -> np.ndarray:
        """Forcing value seen by each time step (``x_{ceil(t/tau)}``)."""
        years = np.arange(self.n_times) // self.steps_per_year
        return np.asarray(self.forcing_annual, dtype=np.float64)[years]

    # ------------------------------------------------------------------ #
    # Views and statistics
    # ------------------------------------------------------------------ #
    def member(self, r: int) -> np.ndarray:
        """Fields of ensemble member ``r`` with shape ``(T, ntheta, nphi)``."""
        return self.data[r]

    def subset_time(self, start: int, stop: int) -> "ClimateEnsemble":
        """A new ensemble restricted to time steps ``start:stop``."""
        if not (0 <= start < stop <= self.n_times):
            raise ValueError("invalid time range")
        return ClimateEnsemble(
            data=self.data[:, start:stop],
            grid=self.grid,
            forcing_annual=self.forcing_annual,
            steps_per_year=self.steps_per_year,
            start_year=self.start_year,
            metadata=dict(self.metadata),
        )

    def window(self, window) -> np.ndarray:
        """Fields restricted to a :class:`~repro.core.window.SpatialWindow`.

        Returns a view of shape ``(R, T, nlat, nlon)``; the window is
        validated against this ensemble's grid.  (A plain array, not an
        ensemble: a windowed region is no longer a global grid.)
        """
        window.validate_for(self.grid)
        return window.extract(self.data)

    def ensemble_mean(self) -> np.ndarray:
        """Mean over ensemble members, shape ``(T, ntheta, nphi)``."""
        return self.data.mean(axis=0)

    def time_mean(self) -> np.ndarray:
        """Mean over ensemble and time, shape ``(ntheta, nphi)``."""
        return self.data.mean(axis=(0, 1))

    def global_mean_series(self) -> np.ndarray:
        """Area-weighted global mean time series, shape ``(R, T)``."""
        w = self.grid.area_weights()
        return np.tensordot(self.data, w, axes=([2, 3], [0, 1]))

    def storage_bytes(self, dtype: np.dtype | str | None = None) -> int:
        """Bytes required to store the raw ensemble at a given dtype."""
        dt = np.dtype(dtype) if dtype is not None else self.data.dtype
        return self.n_data_points * dt.itemsize
