"""Climate data substrate: synthetic ERA5-like simulations and forcing.

The paper trains its emulator on ERA5 2-metre temperature (hourly, 35
years; daily, 83 years).  ERA5 is not available offline, so this subpackage
generates *synthetic simulation ensembles with the same statistical
structure*: a latitude-dependent climatology with a land/sea contrast,
seasonal and diurnal cycles, a forced warming trend driven by a radiative
forcing trajectory, and spatially correlated anisotropic noise synthesised
from a prescribed angular power spectrum and an autoregressive temporal
model.  Because the generator is built from exactly the ingredients the
emulator estimates, the test-suite can verify parameter recovery against a
known ground truth — something the real ERA5 would not permit.

Modules
-------
* :mod:`repro.data.forcing` — radiative-forcing trajectories, a thin
  layer over the :data:`repro.scenarios.SCENARIOS` registry (historical
  reconstruction, idealised curves, SSP-like pathways).
* :mod:`repro.data.landsea` — a smooth synthetic land/sea mask used to
  induce longitudinal (anisotropic) structure.
* :mod:`repro.data.era5_like` — the gridded temperature-field generator.
* :mod:`repro.data.ensemble` — the ensemble container consumed by the
  emulator (data plus coordinates plus forcing).
"""

from repro.data.forcing import (
    ForcingScenario,
    expand_to_resolution,
    historical_forcing,
    scenario_forcing,
)
from repro.data.landsea import land_fraction
from repro.data.era5_like import Era5LikeConfig, Era5LikeGenerator
from repro.data.ensemble import ClimateEnsemble

__all__ = [
    "ClimateEnsemble",
    "Era5LikeConfig",
    "Era5LikeGenerator",
    "ForcingScenario",
    "expand_to_resolution",
    "historical_forcing",
    "land_fraction",
    "scenario_forcing",
]
