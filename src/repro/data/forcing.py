"""Radiative forcing trajectories, resolved through the scenario registry.

The mean-trend model (Eq. 2) relates local temperature to an annual-scale
radiative forcing trajectory ``x_t`` (W m^-2).  Forcing pathways are no
longer hardcoded here: every named scenario — the historical-like
reconstruction, the idealised constant / ramp / high-emissions /
stabilisation curves, and the SSP-like low / medium / high / overshoot
pathways — lives in :data:`repro.scenarios.SCENARIOS`, a
:class:`~repro.util.registry.BackendRegistry` of factories producing
composable :class:`~repro.scenarios.spec.ScenarioSpec` objects
(greenhouse-gas ramps, volcanic eruptions, aerosol offsets, solar cycle,
stabilisation-to-target summed together).

This module is the thin data-layer spelling of that registry:

* :func:`scenario_forcing` — look a pathway up by name (or legacy
  :class:`ForcingScenario` member, or a ``ScenarioSpec`` itself) and
  evaluate it; unknown names raise an error listing every registered
  scenario.
* :func:`historical_forcing` — the parameterised historical
  reconstruction, now literally the sum of its registry components.
* :func:`expand_to_resolution` — the ``x_{ceil(t / tau)}`` annual-to-step
  expansion of Eq. (2).

Registering a new pathway (``repro.scenarios.register_scenario``) makes it
available here with **zero edits** to this module.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.scenarios.components import (
    HISTORICAL_VOLCANOES,
    VolcanicEruption,
    historical_pathway,
)
from repro.scenarios.registry import resolve_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["ForcingScenario", "historical_forcing", "scenario_forcing", "expand_to_resolution"]

# Backwards-compatible aliases: the eruption dataclass used to be the
# module-private ``_Volcano`` with these exact default parameters.
_Volcano = VolcanicEruption
_HISTORICAL_VOLCANOES = HISTORICAL_VOLCANOES


class ForcingScenario(str, Enum):
    """Legacy enum of the original five scenarios.

    Kept for backwards compatibility; the registry accepts these members
    alongside any other registered name (``repro.list_scenarios()`` shows
    the full catalogue).
    """

    HISTORICAL = "historical"
    CONSTANT = "constant"
    LINEAR_RAMP = "linear-ramp"
    HIGH_EMISSIONS = "high-emissions"
    STABILISATION = "stabilisation"


def historical_forcing(
    n_years: int,
    start_year: int = 1940,
    base: float = 0.3,
    growth: float = 0.035,
    volcanoes: tuple[VolcanicEruption, ...] = HISTORICAL_VOLCANOES,
) -> np.ndarray:
    """Historical-like annual radiative forcing (W m^-2).

    A slowly accelerating greenhouse-gas term plus short negative volcanic
    excursions, qualitatively matching the 1940-2022 period the paper's
    daily dataset covers.  Implemented as the component sum of
    :func:`repro.scenarios.components.historical_pathway`, so the curve
    and the registered ``"historical"`` scenario cannot drift apart.
    """
    spec = ScenarioSpec(
        "historical", historical_pathway(base=base, growth=growth, volcanoes=volcanoes)
    )
    return spec.annual_forcing(n_years)


def scenario_forcing(
    scenario: "ForcingScenario | ScenarioSpec | str",
    n_years: int,
    start_level: float = 2.5,
) -> np.ndarray:
    """Annual forcing for a registered scenario (W m^-2).

    ``scenario`` may be a registered name (``"ssp-low"``), a legacy
    :class:`ForcingScenario` member, or a
    :class:`~repro.scenarios.spec.ScenarioSpec`.  An unknown name raises
    :class:`~repro.util.registry.UnknownBackendError` (a ``ValueError``)
    listing every registered scenario.
    """
    return resolve_scenario(scenario, start_level=start_level).annual_forcing(n_years)


def expand_to_resolution(annual_forcing: np.ndarray, steps_per_year: int) -> np.ndarray:
    """Repeat an annual trajectory to a finer temporal resolution.

    Implements the ``x_{ceil(t / tau)}`` indexing of Eq. (2): every time
    step within year ``y`` sees the annual value ``x_y``.
    """
    annual_forcing = np.asarray(annual_forcing, dtype=np.float64)
    if annual_forcing.ndim != 1:
        raise ValueError(
            f"annual_forcing must be 1-D (one value per year), "
            f"got shape {annual_forcing.shape}"
        )
    if annual_forcing.size == 0:
        raise ValueError("annual_forcing must be non-empty")
    if steps_per_year < 1:
        raise ValueError("steps_per_year must be positive")
    return np.repeat(annual_forcing, steps_per_year)
