"""Radiative forcing trajectories.

The mean-trend model (Eq. 2) relates local temperature to an annual-scale
radiative forcing trajectory ``x_t`` through an infinite distributed-lag
response.  The paper uses trajectories consistent with the historical ERA5
period; offline we provide a smooth historical-like reconstruction
(greenhouse-gas growth plus a handful of volcanic dips) and the usual
idealised scenarios used by emulator studies, all expressed in W m^-2.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["ForcingScenario", "historical_forcing", "scenario_forcing", "expand_to_resolution"]


class ForcingScenario(str, Enum):
    """Idealised forcing scenarios."""

    HISTORICAL = "historical"
    CONSTANT = "constant"
    LINEAR_RAMP = "linear-ramp"
    HIGH_EMISSIONS = "high-emissions"
    STABILISATION = "stabilisation"


@dataclass(frozen=True)
class _Volcano:
    year_index: int
    magnitude: float
    decay_years: float = 1.5


_HISTORICAL_VOLCANOES = (
    _Volcano(year_index=23, magnitude=-2.0),   # Agung-like
    _Volcano(year_index=42, magnitude=-2.5),   # El Chichon-like
    _Volcano(year_index=51, magnitude=-3.0),   # Pinatubo-like
)


def historical_forcing(
    n_years: int,
    start_year: int = 1940,
    base: float = 0.3,
    growth: float = 0.035,
    volcanoes: tuple[_Volcano, ...] = _HISTORICAL_VOLCANOES,
) -> np.ndarray:
    """Historical-like annual radiative forcing (W m^-2).

    A slowly accelerating greenhouse-gas term plus short negative volcanic
    excursions, qualitatively matching the 1940-2022 period the paper's
    daily dataset covers.
    """
    if n_years < 1:
        raise ValueError("n_years must be positive")
    years = np.arange(n_years, dtype=np.float64)
    ghg = base + growth * years * (1.0 + 0.012 * years)
    rf = ghg.copy()
    for v in volcanoes:
        if 0 <= v.year_index < n_years:
            decay = np.exp(-np.maximum(years - v.year_index, 0.0) / v.decay_years)
            decay[years < v.year_index] = 0.0
            rf += v.magnitude * decay
    return rf


def scenario_forcing(
    scenario: ForcingScenario | str,
    n_years: int,
    start_level: float = 2.5,
) -> np.ndarray:
    """Annual forcing for an idealised scenario (W m^-2)."""
    scenario = ForcingScenario(scenario)
    years = np.arange(n_years, dtype=np.float64)
    if scenario is ForcingScenario.HISTORICAL:
        return historical_forcing(n_years)
    if scenario is ForcingScenario.CONSTANT:
        return np.full(n_years, start_level)
    if scenario is ForcingScenario.LINEAR_RAMP:
        return start_level + 0.05 * years
    if scenario is ForcingScenario.HIGH_EMISSIONS:
        return start_level + 0.085 * years * (1.0 + 0.01 * years)
    if scenario is ForcingScenario.STABILISATION:
        return start_level + 2.5 * (1.0 - np.exp(-years / 30.0))
    raise ValueError(f"unhandled scenario {scenario}")  # pragma: no cover


def expand_to_resolution(annual_forcing: np.ndarray, steps_per_year: int) -> np.ndarray:
    """Repeat an annual trajectory to a finer temporal resolution.

    Implements the ``x_{ceil(t / tau)}`` indexing of Eq. (2): every time
    step within year ``y`` sees the annual value ``x_y``.
    """
    annual_forcing = np.asarray(annual_forcing, dtype=np.float64)
    if steps_per_year < 1:
        raise ValueError("steps_per_year must be positive")
    return np.repeat(annual_forcing, steps_per_year)
