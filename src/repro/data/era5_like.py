"""Synthetic ERA5-like surface-temperature ensemble generator.

The generator produces global 2-metre-temperature fields with the
statistical ingredients the emulator is designed to capture (and that ERA5
exhibits): a latitude-dependent climatology with land/sea contrast, a
forced warming trend whose sensitivity is amplified over land and at high
latitudes, seasonal (and optionally diurnal) cycles whose phase flips
between hemispheres, a spatially varying noise scale, and spatially
correlated anisotropic stochastic variability built from a red angular
power spectrum with autoregressive temporal memory.

Because the generative model has exactly the structure of Eq. (1)-(2), the
test-suite can verify that the emulator recovers the prescribed trend
coefficients, seasonal amplitudes, scale field and temporal correlation —
a ground-truth check that real reanalysis data cannot provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.ensemble import ClimateEnsemble
from repro.data.forcing import historical_forcing
from repro.data.landsea import land_fraction
from repro.sht.grid import Grid
from repro.sht.spectrum import red_spectrum
from repro.sht.transform import SHTPlan

__all__ = ["Era5LikeConfig", "Era5LikeGenerator"]


@dataclass(frozen=True)
class Era5LikeConfig:
    """Configuration of the synthetic ERA5-like generator.

    Parameters
    ----------
    lmax:
        Band-limit of the stochastic component (controls spatial detail).
    n_years:
        Number of simulated years.
    steps_per_year:
        Temporal resolution ``tau`` (365 = daily, 8760 = hourly; tests use
        small synthetic values such as 24 or 36).
    n_ensemble:
        Number of ensemble members ``R``.
    grid:
        Spatial grid; the minimal grid for ``lmax`` when omitted.
    base_temperature_k / equator_pole_contrast_k:
        Climatology: pole temperature and equator-to-pole contrast.
    climate_sensitivity / polar_amplification / land_sensitivity:
        Warming per W m^-2 and its latitudinal/land amplification (the
        ``beta_1`` field of Eq. 2).
    seasonal_amplitude_k / land_seasonal_boost_k:
        Seasonal-cycle amplitude over ocean and its enhancement over land.
    diurnal_amplitude_k:
        Amplitude of a diurnal harmonic (only meaningful for hourly-like
        ``steps_per_year``; set to zero to disable).
    noise_scale_k / land_noise_boost_k / polar_noise_boost_k:
        The ``sigma(theta, phi)`` field of Eq. (1).
    spectrum_slope:
        Slope of the red angular spectrum of the stochastic component.
    ar_coefficient:
        Lag-one autoregressive coefficient of the spectral coefficients.
    nugget_std:
        Standard deviation of the white measurement-like residual
        ``epsilon`` added on the grid.
    """

    lmax: int = 16
    n_years: int = 4
    steps_per_year: int = 36
    n_ensemble: int = 2
    grid: Grid | None = None
    start_year: int = 1940
    forcing_growth: float = 0.035
    base_temperature_k: float = 250.0
    equator_pole_contrast_k: float = 48.0
    land_offset_k: float = 3.0
    climate_sensitivity: float = 0.35
    polar_amplification: float = 0.55
    land_sensitivity: float = 0.2
    seasonal_amplitude_k: float = 6.0
    land_seasonal_boost_k: float = 14.0
    n_harmonics: int = 2
    diurnal_amplitude_k: float = 0.0
    noise_scale_k: float = 1.2
    land_noise_boost_k: float = 1.5
    polar_noise_boost_k: float = 1.0
    spectrum_slope: float = -2.2
    ar_coefficient: float = 0.6
    nugget_std: float = 0.05

    def resolved_grid(self) -> Grid:
        """The grid used by the generator."""
        return self.grid if self.grid is not None else Grid.for_bandlimit(self.lmax)

    @property
    def n_times(self) -> int:
        """Total number of time steps."""
        return self.n_years * self.steps_per_year


class Era5LikeGenerator:
    """Generate synthetic ERA5-like temperature ensembles.

    Parameters
    ----------
    config:
        Generator configuration.
    seed:
        Seed of the underlying random generator.
    """

    def __init__(self, config: Era5LikeConfig | None = None, seed: int = 0) -> None:
        self.config = config or Era5LikeConfig()
        self.seed = seed
        self._grid = self.config.resolved_grid()
        self._plan = SHTPlan(lmax=self.config.lmax, grid=self._grid)
        self._land = land_fraction(self._grid)
        theta, _ = self._grid.mesh()
        self._theta = theta

    # ------------------------------------------------------------------ #
    # Deterministic ingredient fields (ground truth for the tests)
    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> Grid:
        """The spatial grid."""
        return self._grid

    @property
    def land(self) -> np.ndarray:
        """Land fraction field."""
        return self._land

    def climatology(self) -> np.ndarray:
        """The intercept field ``beta_0`` (Kelvin)."""
        cfg = self.config
        return (
            cfg.base_temperature_k
            + cfg.equator_pole_contrast_k * np.sin(self._theta)
            + cfg.land_offset_k * (self._land - 0.5)
        )

    def sensitivity(self) -> np.ndarray:
        """The forcing-response field ``beta_1`` (Kelvin per W m^-2)."""
        cfg = self.config
        return (
            cfg.climate_sensitivity
            + cfg.polar_amplification * np.cos(self._theta) ** 2
            + cfg.land_sensitivity * self._land
        )

    def seasonal_amplitude(self) -> np.ndarray:
        """Amplitude of the annual harmonic (hemisphere-antisymmetric)."""
        cfg = self.config
        return (cfg.seasonal_amplitude_k + cfg.land_seasonal_boost_k * self._land) * np.cos(
            self._theta
        )

    def noise_scale(self) -> np.ndarray:
        """The scale field ``sigma(theta, phi)`` (Kelvin)."""
        cfg = self.config
        return (
            cfg.noise_scale_k
            + cfg.land_noise_boost_k * self._land
            + cfg.polar_noise_boost_k * np.cos(self._theta) ** 2
        )

    def mean_field(self, forcing_per_step: np.ndarray) -> np.ndarray:
        """Deterministic component ``m_t`` for every time step.

        Returns an array of shape ``(T, ntheta, nphi)``.
        """
        cfg = self.config
        t = np.arange(len(forcing_per_step), dtype=np.float64)
        phase = 2.0 * np.pi * t / cfg.steps_per_year
        seasonal = (
            self.seasonal_amplitude()[None, :, :]
            * np.cos(phase)[:, None, None]
        )
        if cfg.n_harmonics > 1:
            seasonal = seasonal + (
                0.25
                * self.seasonal_amplitude()[None, :, :]
                * np.sin(2.0 * phase)[:, None, None]
            )
        diurnal = 0.0
        if cfg.diurnal_amplitude_k > 0:
            diurnal = (
                cfg.diurnal_amplitude_k
                * self._land[None, :, :]
                * np.cos(2.0 * np.pi * t * (cfg.steps_per_year / 365.0) )[:, None, None]
            )
        trend = self.sensitivity()[None, :, :] * forcing_per_step[:, None, None]
        return self.climatology()[None, :, :] + trend + seasonal + diurnal

    # ------------------------------------------------------------------ #
    # Stochastic component
    # ------------------------------------------------------------------ #
    def stochastic_component(self, n_times: int, rng: np.random.Generator) -> np.ndarray:
        """AR(1)-in-time, red-spectrum-in-space stochastic field ``Z_t``.

        The field is scaled to roughly unit point variance so the spatial
        structure of the final variance is carried by ``sigma``.
        """
        cfg = self.config
        power = red_spectrum(cfg.lmax, slope=cfg.spectrum_slope)
        phi = cfg.ar_coefficient
        innov_scale = np.sqrt(max(1.0 - phi ** 2, 1e-12))

        coeffs = np.zeros((n_times, self._plan.n_coeffs), dtype=np.complex128)
        state = self._plan.random_coefficients(rng, power=power)
        coeffs[0] = state
        for t in range(1, n_times):
            innovation = self._plan.random_coefficients(rng, power=power)
            state = phi * state + innov_scale * innovation
            coeffs[t] = state
        fields = self._plan.inverse(coeffs)
        # Normalise to unit variance over space-time (approximately).
        std = float(np.std(fields)) or 1.0
        fields = fields / std
        if cfg.nugget_std > 0:
            fields = fields + cfg.nugget_std * rng.standard_normal(fields.shape)
        return fields

    # ------------------------------------------------------------------ #
    # Ensemble generation
    # ------------------------------------------------------------------ #
    def generate(self, dtype: np.dtype | str = np.float64) -> ClimateEnsemble:
        """Generate the full ensemble described by the configuration."""
        cfg = self.config
        rng = np.random.default_rng(self.seed)
        forcing = historical_forcing(cfg.n_years, growth=cfg.forcing_growth)
        forcing_per_step = np.repeat(forcing, cfg.steps_per_year)

        mean = self.mean_field(forcing_per_step)
        sigma = self.noise_scale()

        data = np.empty(
            (cfg.n_ensemble, cfg.n_times) + self._grid.shape, dtype=np.dtype(dtype)
        )
        for r in range(cfg.n_ensemble):
            z = self.stochastic_component(cfg.n_times, rng)
            data[r] = mean + sigma[None, :, :] * z

        return ClimateEnsemble(
            data=data,
            grid=self._grid,
            forcing_annual=forcing,
            steps_per_year=cfg.steps_per_year,
            start_year=cfg.start_year,
            metadata={
                "generator": "era5-like",
                "lmax": cfg.lmax,
                "seed": self.seed,
            },
        )
