"""Synthetic land/sea mask.

The anisotropy (longitude dependence) of surface temperature comes largely
from the land/ocean contrast: land warms and cools faster, has a larger
diurnal and seasonal cycle, and carries more small-scale variance.  To give
the synthetic ERA5-like fields the same kind of longitudinally varying
structure, this module builds a smooth "land fraction" field from a small
number of continent-like Gaussian blobs on the sphere.  The field is
deterministic (fixed blob catalogue) so all components of the package see a
consistent geography.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sht.grid import Grid

__all__ = ["Continent", "CONTINENTS", "land_fraction"]


@dataclass(frozen=True)
class Continent:
    """A continent-like bump: centre (colatitude, longitude) and extents."""

    name: str
    colat_deg: float
    lon_deg: float
    colat_extent_deg: float
    lon_extent_deg: float
    amplitude: float = 1.0


#: A coarse, fictional-but-plausible continental configuration.
CONTINENTS: tuple[Continent, ...] = (
    Continent("laurentia", colat_deg=40.0, lon_deg=265.0, colat_extent_deg=22.0, lon_extent_deg=35.0),
    Continent("amazonia", colat_deg=100.0, lon_deg=300.0, colat_extent_deg=20.0, lon_extent_deg=20.0),
    Continent("eurasia", colat_deg=38.0, lon_deg=80.0, colat_extent_deg=22.0, lon_extent_deg=60.0),
    Continent("africa", colat_deg=85.0, lon_deg=20.0, colat_extent_deg=28.0, lon_extent_deg=22.0),
    Continent("australis", colat_deg=115.0, lon_deg=135.0, colat_extent_deg=13.0, lon_extent_deg=18.0),
    Continent("antarctica", colat_deg=172.0, lon_deg=0.0, colat_extent_deg=16.0, lon_extent_deg=360.0),
    Continent("boreal-cap", colat_deg=8.0, lon_deg=0.0, colat_extent_deg=10.0, lon_extent_deg=360.0, amplitude=0.7),
)


def land_fraction(grid: Grid, continents: tuple[Continent, ...] = CONTINENTS) -> np.ndarray:
    """Smooth land-fraction field in ``[0, 1]`` on ``grid``.

    Each continent contributes a periodic-in-longitude Gaussian bump; the
    sum is squashed through a logistic so values saturate near one over
    continental interiors and near zero over open ocean.
    """
    theta, phi = grid.mesh()
    theta_deg = np.degrees(theta)
    phi_deg = np.degrees(phi)
    total = np.zeros(grid.shape, dtype=np.float64)
    for c in continents:
        dtheta = (theta_deg - c.colat_deg) / c.colat_extent_deg
        dphi = phi_deg - c.lon_deg
        dphi = (dphi + 180.0) % 360.0 - 180.0
        dphi = dphi / c.lon_extent_deg
        total += c.amplitude * np.exp(-0.5 * (dtheta ** 2 + dphi ** 2))
    return 1.0 / (1.0 + np.exp(-6.0 * (total - 0.45)))
