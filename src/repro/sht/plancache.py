"""Process-safe cache of precomputed SHT plans.

Building a transform plan is the expensive, data-independent part of the
synthesis hot path: the Wigner-d tables alone are ``O(L^3)`` values, and
at ERA5 scale (``L = 720``) constructing them dwarfs the cost of a single
inverse transform.  Before this cache every consumer that instantiated a
:class:`~repro.core.spectral_model.SpectralStochasticModel` — each
``repro.load`` of the same artifact, each campaign worker process — paid
that cost again.

:func:`get_plan` memoises plans per process, keyed on
``(backend, lmax, grid)``:

* **backend** is resolved through
  :data:`repro.sht.backends.SHT_BACKENDS`, so aliases share one entry
  (``"fft"`` and ``"fast"`` hit the same plan) and re-registering a name
  (``overwrite=True``) starts a fresh entry rather than serving a stale
  plan (the registry stamps every registration with a revision counter);
* **lmax / grid** pin the band-limit and the ``(ntheta, nphi)`` shape.

The cache is *per process* by construction (module state is never shared
across ``fork``/``spawn`` boundaries at the Python level), which is what
makes it safe under :func:`repro.run_campaign`'s process executor: each
worker process warms its own cache on first use and every run that worker
executes reuses the same tables.  Within a process, access is guarded by a
lock, and a plan under concurrent construction is built at most once per
key (the first finished build wins; see :func:`get_plan`).

Cached plans are shared, so they must be treated as **read-only**; the
built-in backends never mutate a plan after construction, and custom
backends registered with ``SHT_BACKENDS.register`` must follow the same
contract to be cacheable.  The cache is unlimited by default — the key
space (backends x band-limits x grids actually in use) is tiny in
practice — but long-lived serving processes that touch many band-limits
can cap it: :func:`set_plan_cache_limit` installs a bytes budget under
which least-recently-used plans are evicted (eviction counts surface in
:func:`plan_cache_stats`), and :func:`clear_plan_cache` empties the
cache explicitly (tests, memory-pressure handling).  An evicted plan is
simply rebuilt on next use; nothing holds dangling references.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.obs import get_registry, span
from repro.sht.backends import SHT_BACKENDS
from repro.sht.grid import Grid

__all__ = [
    "clear_plan_cache",
    "get_plan",
    "plan_cache_key",
    "plan_cache_stats",
    "set_plan_cache_limit",
]

_LOCK = threading.Lock()
_CACHE: dict[tuple, object] = {}
_LIMIT_BYTES: "int | None" = None

#: Registry prefix for the cache's counters (hits/misses/evictions live
#: on the process-wide metrics registry; ``plan_cache_stats`` is a view).
_METRIC_PREFIX = "sht.plan_cache"


def _plan_nbytes(plan) -> int:
    """Resident bytes of a plan: its reachable ndarrays.

    Walks the plan's ``__dict__`` one container level deep (arrays plus
    lists/tuples/dicts of arrays), which covers every table the built-in
    plans hold — the Wigner-d list, the integral matrix, and the
    per-order synthesis/analysis operator lists.  All of them are built
    eagerly in ``SHTPlan.__post_init__``, so a plan's measured size is
    fixed from the moment it enters the cache.
    """
    total = 0
    for value in vars(plan).values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, dict):
            total += sum(
                v.nbytes for v in value.values() if isinstance(v, np.ndarray)
            )
        elif isinstance(value, (list, tuple)):
            total += sum(v.nbytes for v in value if isinstance(v, np.ndarray))
    return total


def _evict_over_limit_locked(keep: "tuple | None") -> None:
    """Drop least-recently-used plans until the cache fits the limit.

    ``keep`` (the key just served) is never evicted — even when it alone
    exceeds the whole budget — so the caller's plan is not churned out
    by its own insertion.  Plans are immutable after construction
    (every table is built eagerly in ``SHTPlan.__post_init__``), so each
    plan's size is measured once per eviction pass; cache contents can
    only grow through insertions, which all route through here.
    """
    if _LIMIT_BYTES is None:
        return
    sizes = {key: _plan_nbytes(plan) for key, plan in _CACHE.items()}
    total = sum(sizes.values())
    for key in list(_CACHE):
        if total <= _LIMIT_BYTES:
            return
        if key == keep:
            continue
        del _CACHE[key]
        total -= sizes[key]
        get_registry().add(f"{_METRIC_PREFIX}.evictions")


def set_plan_cache_limit(max_bytes: "int | None") -> None:
    """Install (or remove) a bytes budget on the plan cache.

    ``None`` (the default) keeps the cache unlimited — existing
    behaviour is unchanged unless a limit is set.  With a limit,
    least-recently-used plans are evicted whenever the measured total
    (see :func:`plan_cache_stats` ``"bytes"``) exceeds the budget; the
    most-recently-served plan survives even if it alone is over budget,
    so a single oversized plan still serves.  Eviction counts accumulate
    in :func:`plan_cache_stats` ``"evictions"``.
    """
    global _LIMIT_BYTES
    if max_bytes is not None and int(max_bytes) < 0:
        raise ValueError(f"max_bytes must be >= 0 or None, got {max_bytes}")
    with _LOCK:
        _LIMIT_BYTES = None if max_bytes is None else int(max_bytes)
        _evict_over_limit_locked(keep=None)


def plan_cache_key(sht_method: str, lmax: int, grid: Grid) -> tuple:
    """The cache key for a plan request: ``(name, revision, lmax, ntheta, nphi)``.

    The backend name is canonicalised through the registry (aliases map to
    the primary name, lookup is case-insensitive) and carries the
    registration revision, so a re-registered backend never answers from a
    stale entry.  Raises
    :class:`~repro.util.registry.UnknownBackendError` for names the
    registry does not know.
    """
    spec = SHT_BACKENDS.resolve(sht_method)
    return (spec.name, spec.revision, int(lmax), int(grid.ntheta), int(grid.nphi))


def get_plan(sht_method: str, lmax: int, grid: Grid):
    """The shared plan for ``(sht_method, lmax, grid)``, built at most once.

    On a hit the *same object* (same Wigner/Legendre/quadrature tables) is
    returned to every caller in the process; on a miss the backend factory
    runs outside the lock (plan construction is ``O(L^3)`` and must not
    serialise unrelated lookups) and the first finished build is kept —
    a concurrent duplicate build of the same key is discarded, so all
    callers still converge on one shared plan.

    Parameters
    ----------
    sht_method:
        Registered backend name or alias (``"fast"``, ``"direct"``, ...).
    lmax:
        Band-limit ``L``.
    grid:
        Equiangular grid; must support the band-limit (enforced by the
        backend's own constructor).

    Returns
    -------
    object
        A plan exposing ``forward`` / ``inverse`` at the requested
        band-limit and grid.  Treat it as read-only: it is shared.
    """
    key = plan_cache_key(sht_method, lmax, grid)
    with _LOCK:
        plan = _CACHE.get(key)
        if plan is not None:
            get_registry().add(f"{_METRIC_PREFIX}.hits")
            # Dicts preserve insertion order; re-inserting keeps the
            # cache LRU-ordered for the bytes-limit eviction policy.
            # No budget re-check here: plans are immutable after
            # construction, so a hit cannot change the cache's byte
            # total — only insertions (the miss path) can.
            del _CACHE[key]
            _CACHE[key] = plan
            return plan
    with span(f"{_METRIC_PREFIX}.build", backend=key[0], lmax=int(lmax)):
        built = SHT_BACKENDS.resolve(sht_method).factory(lmax=lmax, grid=grid)
    with _LOCK:
        plan = _CACHE.setdefault(key, built)
        if plan is built:
            get_registry().add(f"{_METRIC_PREFIX}.misses")
            _evict_over_limit_locked(keep=key)
        else:
            get_registry().add(f"{_METRIC_PREFIX}.hits")
    return plan


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the hit/miss/eviction counters.

    The bytes limit installed by :func:`set_plan_cache_limit` is
    configuration, not contents: it survives a clear.  The counters live
    on the process-wide metrics registry under ``sht.plan_cache.``;
    resetting that prefix leaves every other component's metrics alone.
    """
    with _LOCK:
        _CACHE.clear()
        get_registry().reset(_METRIC_PREFIX)


def plan_cache_stats() -> dict:
    """Cache observability: size, bytes, hit/miss/eviction counters.

    ``pid`` makes per-process warm-up visible in campaign workers (each
    worker process reports its own counters); ``keys`` lists the cached
    ``(backend, revision, lmax, ntheta, nphi)`` tuples in LRU-to-MRU
    order; ``bytes`` is the measured ndarray footprint of every cached
    plan and ``limit_bytes``/``evictions`` describe the optional budget
    (see :func:`set_plan_cache_limit`; ``limit_bytes`` is ``None`` when
    unlimited).
    """
    registry = get_registry()
    with _LOCK:
        return {
            "size": len(_CACHE),
            "bytes": sum(_plan_nbytes(plan) for plan in _CACHE.values()),
            "hits": int(registry.counter(f"{_METRIC_PREFIX}.hits")),
            "misses": int(registry.counter(f"{_METRIC_PREFIX}.misses")),
            "evictions": int(registry.counter(f"{_METRIC_PREFIX}.evictions")),
            "limit_bytes": _LIMIT_BYTES,
            "pid": os.getpid(),
            "keys": list(_CACHE),
        }
