"""Process-safe cache of precomputed SHT plans.

Building a transform plan is the expensive, data-independent part of the
synthesis hot path: the Wigner-d tables alone are ``O(L^3)`` values, and
at ERA5 scale (``L = 720``) constructing them dwarfs the cost of a single
inverse transform.  Before this cache every consumer that instantiated a
:class:`~repro.core.spectral_model.SpectralStochasticModel` — each
``repro.load`` of the same artifact, each campaign worker process — paid
that cost again.

:func:`get_plan` memoises plans per process, keyed on
``(backend, lmax, grid)``:

* **backend** is resolved through
  :data:`repro.sht.backends.SHT_BACKENDS`, so aliases share one entry
  (``"fft"`` and ``"fast"`` hit the same plan) and re-registering a name
  (``overwrite=True``) starts a fresh entry rather than serving a stale
  plan (the registry stamps every registration with a revision counter);
* **lmax / grid** pin the band-limit and the ``(ntheta, nphi)`` shape.

The cache is *per process* by construction (module state is never shared
across ``fork``/``spawn`` boundaries at the Python level), which is what
makes it safe under :func:`repro.run_campaign`'s process executor: each
worker process warms its own cache on first use and every run that worker
executes reuses the same tables.  Within a process, access is guarded by a
lock, and a plan under concurrent construction is built at most once per
key (the first finished build wins; see :func:`get_plan`).

Cached plans are shared, so they must be treated as **read-only**; the
built-in backends never mutate a plan after construction, and custom
backends registered with ``SHT_BACKENDS.register`` must follow the same
contract to be cacheable.  The cache is unbounded — the key space
(backends x band-limits x grids actually in use) is tiny in practice —
and :func:`clear_plan_cache` empties it explicitly (tests, memory-pressure
handling).
"""

from __future__ import annotations

import os
import threading

from repro.sht.backends import SHT_BACKENDS
from repro.sht.grid import Grid

__all__ = ["clear_plan_cache", "get_plan", "plan_cache_key", "plan_cache_stats"]

_LOCK = threading.Lock()
_CACHE: dict[tuple, object] = {}
_HITS = 0
_MISSES = 0


def plan_cache_key(sht_method: str, lmax: int, grid: Grid) -> tuple:
    """The cache key for a plan request: ``(name, revision, lmax, ntheta, nphi)``.

    The backend name is canonicalised through the registry (aliases map to
    the primary name, lookup is case-insensitive) and carries the
    registration revision, so a re-registered backend never answers from a
    stale entry.  Raises
    :class:`~repro.util.registry.UnknownBackendError` for names the
    registry does not know.
    """
    spec = SHT_BACKENDS.resolve(sht_method)
    return (spec.name, spec.revision, int(lmax), int(grid.ntheta), int(grid.nphi))


def get_plan(sht_method: str, lmax: int, grid: Grid):
    """The shared plan for ``(sht_method, lmax, grid)``, built at most once.

    On a hit the *same object* (same Wigner/Legendre/quadrature tables) is
    returned to every caller in the process; on a miss the backend factory
    runs outside the lock (plan construction is ``O(L^3)`` and must not
    serialise unrelated lookups) and the first finished build is kept —
    a concurrent duplicate build of the same key is discarded, so all
    callers still converge on one shared plan.

    Parameters
    ----------
    sht_method:
        Registered backend name or alias (``"fast"``, ``"direct"``, ...).
    lmax:
        Band-limit ``L``.
    grid:
        Equiangular grid; must support the band-limit (enforced by the
        backend's own constructor).

    Returns
    -------
    object
        A plan exposing ``forward`` / ``inverse`` at the requested
        band-limit and grid.  Treat it as read-only: it is shared.
    """
    global _HITS, _MISSES
    key = plan_cache_key(sht_method, lmax, grid)
    with _LOCK:
        plan = _CACHE.get(key)
        if plan is not None:
            _HITS += 1
            return plan
    built = SHT_BACKENDS.resolve(sht_method).factory(lmax=lmax, grid=grid)
    with _LOCK:
        plan = _CACHE.setdefault(key, built)
        if plan is built:
            _MISSES += 1
        else:
            _HITS += 1
    return plan


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the hit/miss counters."""
    global _HITS, _MISSES
    with _LOCK:
        _CACHE.clear()
        _HITS = 0
        _MISSES = 0


def plan_cache_stats() -> dict:
    """Cache observability: ``{"size", "hits", "misses", "pid", "keys"}``.

    ``pid`` makes per-process warm-up visible in campaign workers (each
    worker process reports its own counters); ``keys`` lists the cached
    ``(backend, revision, lmax, ntheta, nphi)`` tuples.
    """
    with _LOCK:
        return {
            "size": len(_CACHE),
            "hits": _HITS,
            "misses": _MISSES,
            "pid": os.getpid(),
            "keys": sorted(_CACHE),
        }
