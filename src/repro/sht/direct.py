"""Slow direct spherical harmonic transforms (validation reference).

These routines evaluate the synthesis sum and the analysis integral by
explicit summation over grid points and coefficients.  They cost
``O(L^2 * N_theta * N_phi)`` per field and exist purely to validate the fast
FFT/Wigner transform of :mod:`repro.sht.transform`; they are exercised in
the test-suite at small band-limits.

Two analysis methods are provided:

``"quadrature"``
    Longitude FFT followed by exact colatitude quadrature with the parity
    weights of :func:`repro.sht.quadrature.colatitude_weights`.  Exact for
    band-limited fields when ``ntheta >= 2 * lmax`` (the integrand
    ``G_m * Y_{l,m}`` has colatitude Fourier degree up to ``2L - 2``).

``"lstsq"``
    Least-squares projection onto the synthesis operator.  Exact for
    band-limited fields on any grid supporting the band-limit, at the cost
    of building the dense ``(N_theta * N_phi) x L^2`` design matrix.
"""

from __future__ import annotations

import numpy as np

from repro.sht.grid import Grid
from repro.sht.legendre import ylm_matrix_theta0
from repro.sht.quadrature import colatitude_weights
from repro.sht.transform import (
    bandlimit_from_coeff_count,
    degrees_and_orders,
    num_coeffs,
)

__all__ = ["synthesis_matrix", "direct_forward", "direct_inverse"]


def synthesis_matrix(lmax: int, grid: Grid) -> np.ndarray:
    """Dense synthesis operator ``Y[(i, j), (l, m)] = Y_{l,m}(theta_i, phi_j)``.

    Returns a complex matrix of shape ``(ntheta * nphi, lmax**2)`` mapping a
    flat coefficient vector to a flattened grid field.
    """
    theta = grid.colatitudes
    phi = grid.longitudes
    ylm0 = ylm_matrix_theta0(lmax - 1, theta)  # (L^2, ntheta)
    ells, ms = degrees_and_orders(lmax)
    phase = np.exp(1j * ms[:, None] * phi[None, :])  # (L^2, nphi)
    # Y[(l,m), i, j] = ylm0[(l,m), i] * exp(i m phi_j)
    full = ylm0[:, :, None] * phase[:, None, :]
    return full.reshape(num_coeffs(lmax), grid.npoints).T


def direct_inverse(coeffs: np.ndarray, grid: Grid, real: bool = True) -> np.ndarray:
    """Direct synthesis by explicit summation over coefficients.

    ``coeffs`` is ``(..., L**2)`` complex; a stacked ``(n_batch, L**2)``
    input is synthesised in a single dense matmul against the synthesis
    operator, independently per leading slice (bit-identical to
    transforming each slice alone).  Returns ``(..., ntheta, nphi)``
    fields (``float64`` when ``real``, else ``complex128``).
    """
    coeffs = np.asarray(coeffs, dtype=np.complex128)
    lmax = bandlimit_from_coeff_count(coeffs.shape[-1])
    mat = synthesis_matrix(lmax, grid)
    flat = coeffs @ mat.T
    field = flat.reshape(coeffs.shape[:-1] + grid.shape)
    return np.real(field) if real else field


def direct_forward(
    data: np.ndarray,
    lmax: int,
    grid: Grid | None = None,
    method: str = "quadrature",
) -> np.ndarray:
    """Direct analysis of grid field(s) into spectral coefficients.

    Parameters
    ----------
    data:
        Field(s) of shape ``(..., ntheta, nphi)``.
    lmax:
        Band-limit.
    grid:
        Grid; inferred from the trailing shape when omitted.
    method:
        ``"quadrature"`` (exact when ``ntheta >= 2*lmax``) or ``"lstsq"``
        (exact for band-limited data on any supporting grid).
    """
    data = np.asarray(data)
    if grid is None:
        grid = Grid(ntheta=data.shape[-2], nphi=data.shape[-1])
    if data.shape[-2:] != grid.shape:
        raise ValueError("field shape does not match grid")

    if method == "lstsq":
        mat = synthesis_matrix(lmax, grid)
        flat = data.reshape(-1, grid.npoints).astype(np.complex128)
        sol, *_ = np.linalg.lstsq(mat, flat.T, rcond=None)
        return sol.T.reshape(data.shape[:-2] + (num_coeffs(lmax),))

    if method != "quadrature":
        raise ValueError(f"unknown method {method!r}")

    nphi = grid.nphi
    if nphi < 2 * lmax - 1:
        raise ValueError("nphi too small for the requested band-limit")
    # Longitude integral via FFT: G_m(theta_i).
    spec = np.fft.fft(data, axis=-1) * (2.0 * np.pi / nphi)
    orders = np.arange(-(lmax - 1), lmax)
    bins = np.where(orders >= 0, orders, nphi + orders)
    g = spec[..., bins]  # (..., ntheta, 2L-1)

    ylm0 = ylm_matrix_theta0(lmax - 1, grid.colatitudes)  # (L^2, ntheta)
    ells, ms = degrees_and_orders(lmax)

    # The band-limited colatitude extensions of G_m and of Y_{l,m}(theta, 0)
    # both carry a (-1)**m reflection parity, so their product is always
    # reflection-even and the even-parity weights apply for every order.
    w = colatitude_weights(grid.ntheta, parity=+1)

    out = np.zeros(data.shape[:-2] + (num_coeffs(lmax),), dtype=np.complex128)
    for idx in range(num_coeffs(lmax)):
        m = ms[idx]
        g_m = g[..., lmax - 1 + m]  # (..., ntheta)
        integrand = g_m * ylm0[idx][..., :]
        out[..., idx] = np.sum(integrand * w, axis=-1)
    return out
