"""Equiangular latitude/longitude grids for global climate fields.

The emulator operates on ERA5-style regular latitude/longitude grids: the
colatitude :math:`\\theta_i = \\pi i / (N_\\theta - 1)` for
``i = 0 .. N_theta - 1`` (both poles included) and the longitude
:math:`\\phi_j = 2 \\pi j / N_\\phi` for ``j = 0 .. N_phi - 1``.  ERA5 at
0.25 degrees corresponds to ``N_theta = 721`` and ``N_phi = 1440`` with a
spherical-harmonic band-limit ``L = 720`` (paper Section IV-A).

The fast transform requires ``N_phi >= 2L - 1`` (aliasing-free longitude
FFT) and ``N_theta >= L + 1`` (aliasing-free extended-colatitude FFT);
:meth:`Grid.for_bandlimit` builds the smallest grid that satisfies both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Grid", "extended_colatitude_length", "resolution_to_bandlimit", "bandlimit_to_resolution"]

EARTH_RADIUS_KM = 6371.0


def extended_colatitude_length(ntheta: int) -> int:
    """Number of points of the extended colatitude grid, ``2*N_theta - 2``."""
    if ntheta < 2:
        raise ValueError("ntheta must be >= 2")
    return 2 * ntheta - 2


def resolution_to_bandlimit(resolution_deg: float) -> int:
    """Spherical-harmonic band-limit corresponding to a grid spacing.

    A grid spacing of ``resolution_deg`` degrees along latitude resolves
    ``180 / resolution_deg`` intervals pole to pole; the matching band-limit
    is ``L = round(180 / resolution_deg)`` (e.g. 0.25 deg -> L = 720,
    0.034 deg -> L ~= 5294; the paper quotes L = 5219 for ~3.5 km).
    """
    if resolution_deg <= 0:
        raise ValueError("resolution must be positive")
    return int(round(180.0 / resolution_deg))


def bandlimit_to_resolution(lmax: int) -> float:
    """Approximate grid spacing in degrees for a band-limit ``L``."""
    if lmax < 1:
        raise ValueError("lmax must be >= 1")
    return 180.0 / lmax


@dataclass(frozen=True)
class Grid:
    """An equiangular global latitude/longitude grid.

    Parameters
    ----------
    ntheta:
        Number of colatitude points (poles included).
    nphi:
        Number of longitude points (periodic, endpoint excluded).
    """

    ntheta: int
    nphi: int

    def __post_init__(self) -> None:
        if self.ntheta < 2:
            raise ValueError("ntheta must be >= 2")
        if self.nphi < 1:
            raise ValueError("nphi must be >= 1")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def for_bandlimit(cls, lmax: int, oversample: float = 1.0) -> "Grid":
        """Smallest grid supporting an exact transform at band-limit ``lmax``.

        ``oversample > 1`` multiplies both dimensions (useful when fitting
        data that is not exactly band-limited).
        """
        if lmax < 1:
            raise ValueError("lmax must be >= 1")
        ntheta = int(np.ceil((lmax + 1) * oversample))
        nphi = int(np.ceil((2 * lmax - 1) * oversample))
        return cls(ntheta=ntheta, nphi=nphi)

    @classmethod
    def era5(cls) -> "Grid":
        """The ERA5 0.25-degree grid used in the paper (721 x 1440)."""
        return cls(ntheta=721, nphi=1440)

    @classmethod
    def from_resolution(cls, resolution_deg: float) -> "Grid":
        """Grid matching a nominal resolution in degrees."""
        lmax = resolution_to_bandlimit(resolution_deg)
        return cls(ntheta=lmax + 1, nphi=2 * lmax)

    # ------------------------------------------------------------------ #
    # Coordinates
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape ``(ntheta, nphi)``."""
        return (self.ntheta, self.nphi)

    @property
    def npoints(self) -> int:
        """Total number of grid points."""
        return self.ntheta * self.nphi

    @property
    def colatitudes(self) -> np.ndarray:
        """Colatitude values ``theta_i`` in radians, ``0`` to ``pi``."""
        return np.linspace(0.0, np.pi, self.ntheta)

    @property
    def latitudes(self) -> np.ndarray:
        """Latitude values in degrees, ``+90`` (north pole) to ``-90``."""
        return 90.0 - np.degrees(self.colatitudes)

    @property
    def longitudes(self) -> np.ndarray:
        """Longitude values ``phi_j`` in radians, ``[0, 2*pi)``."""
        return 2.0 * np.pi * np.arange(self.nphi) / self.nphi

    @property
    def longitudes_deg(self) -> np.ndarray:
        """Longitude values in degrees, ``[0, 360)``."""
        return np.degrees(self.longitudes)

    @property
    def resolution_deg(self) -> float:
        """Nominal latitudinal grid spacing in degrees."""
        return 180.0 / (self.ntheta - 1)

    @property
    def resolution_km(self) -> float:
        """Nominal grid spacing in kilometres at the equator."""
        return np.deg2rad(self.resolution_deg) * EARTH_RADIUS_KM

    def max_bandlimit(self) -> int:
        """Largest band-limit this grid supports for the exact transform."""
        return min(self.ntheta - 1, (self.nphi + 1) // 2)

    def supports_bandlimit(self, lmax: int) -> bool:
        """Whether the exact fast transform at band-limit ``lmax`` applies."""
        return self.ntheta >= lmax + 1 and self.nphi >= 2 * lmax - 1

    def mesh(self) -> tuple[np.ndarray, np.ndarray]:
        """Meshgrid of ``(theta, phi)`` with shape ``(ntheta, nphi)`` each."""
        return np.meshgrid(self.colatitudes, self.longitudes, indexing="ij")

    def cell_areas(self) -> np.ndarray:
        """Approximate solid angle of each cell (steradians), shape ``shape``.

        Rows at the poles receive the area of their half-band; the total sums
        to ``4*pi`` up to discretisation error and is used for area-weighted
        statistics.
        """
        theta = self.colatitudes
        edges = np.empty(self.ntheta + 1)
        edges[0] = 0.0
        edges[-1] = np.pi
        edges[1:-1] = 0.5 * (theta[:-1] + theta[1:])
        band = np.cos(edges[:-1]) - np.cos(edges[1:])  # integral of sin(theta)
        dphi = 2.0 * np.pi / self.nphi
        return np.repeat((band * dphi)[:, None], self.nphi, axis=1)

    def area_weights(self) -> np.ndarray:
        """Cell areas normalised to sum to one (for weighted averages)."""
        areas = self.cell_areas()
        return areas / areas.sum()

    def data_points(self, ntime: int, nensemble: int = 1) -> int:
        """Total data-point count ``R * T * N_theta * N_phi`` (paper II-B)."""
        return nensemble * ntime * self.npoints

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Grid(ntheta={self.ntheta}, nphi={self.nphi}, "
            f"resolution={self.resolution_deg:.4g} deg / {self.resolution_km:.4g} km)"
        )
