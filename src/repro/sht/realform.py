"""Real-valued packing of spherical-harmonic coefficient vectors.

A real field has complex coefficients obeying the conjugate symmetry
``f_{l,-m} = (-1)^m conj(f_{l,m})``, i.e. exactly ``L^2`` real degrees of
freedom.  The emulator's temporal model (the VAR and the innovation
covariance ``U`` of Eq. 9) operates on the real vector ``f_t in R^{L^2}``;
this module provides the orthogonal change of basis between the complex
coefficient vector and that real vector:

* ``m = 0`` terms map to themselves (they are real);
* for ``m > 0`` the pair ``(f_{l,m}, f_{l,-m})`` maps to
  ``(sqrt(2) Re f_{l,m}, sqrt(2) Im f_{l,m})``.

The scaling keeps the transformation orthogonal, so Euclidean norms (and
therefore angular power spectra and Gaussian covariance structure) are
preserved between the two representations.
"""

from __future__ import annotations

import numpy as np

from repro.sht.transform import (
    bandlimit_from_coeff_count,
    coeff_index,
    degrees_and_orders,
)

__all__ = ["real_from_complex", "complex_from_real", "real_basis_labels"]

_SQRT2 = np.sqrt(2.0)


def real_from_complex(coeffs: np.ndarray) -> np.ndarray:
    """Pack complex coefficient vector(s) into the real representation.

    Parameters
    ----------
    coeffs:
        Complex array of shape ``(..., L**2)`` with conjugate symmetry (the
        negative-order entries are ignored; only ``m >= 0`` is read).

    Returns
    -------
    numpy.ndarray
        Real array of shape ``(..., L**2)``.
    """
    coeffs = np.asarray(coeffs)
    lmax = bandlimit_from_coeff_count(coeffs.shape[-1])
    out = np.empty(coeffs.shape[:-1] + (lmax * lmax,), dtype=np.float64)
    for ell in range(lmax):
        out[..., coeff_index(ell, 0)] = coeffs[..., coeff_index(ell, 0)].real
        for m in range(1, ell + 1):
            c = coeffs[..., coeff_index(ell, m)]
            out[..., coeff_index(ell, m)] = _SQRT2 * c.real
            out[..., coeff_index(ell, -m)] = _SQRT2 * c.imag
    return out


def complex_from_real(real_coeffs: np.ndarray) -> np.ndarray:
    """Unpack the real representation back into complex coefficients.

    The conjugate symmetry is restored explicitly, so synthesising the
    result always yields a real field.
    """
    real_coeffs = np.asarray(real_coeffs, dtype=np.float64)
    lmax = bandlimit_from_coeff_count(real_coeffs.shape[-1])
    out = np.zeros(real_coeffs.shape[:-1] + (lmax * lmax,), dtype=np.complex128)
    for ell in range(lmax):
        out[..., coeff_index(ell, 0)] = real_coeffs[..., coeff_index(ell, 0)]
        for m in range(1, ell + 1):
            re = real_coeffs[..., coeff_index(ell, m)] / _SQRT2
            im = real_coeffs[..., coeff_index(ell, -m)] / _SQRT2
            value = re + 1j * im
            out[..., coeff_index(ell, m)] = value
            out[..., coeff_index(ell, -m)] = ((-1) ** m) * np.conj(value)
    return out


def real_basis_labels(lmax: int) -> list[str]:
    """Human-readable labels of the real-basis components (for reports)."""
    ells, ms = degrees_and_orders(lmax)
    labels = []
    for ell, m in zip(ells, ms):
        if m == 0:
            labels.append(f"l={ell} m=0")
        elif m > 0:
            labels.append(f"l={ell} m={m} (re)")
        else:
            labels.append(f"l={ell} m={-m} (im)")
    return labels
