"""Angular power spectra of spherical-harmonic coefficient vectors.

The angular power spectrum ``C_l = (1 / (2l+1)) * sum_m |f_{l,m}|^2`` is the
natural diagnostic for comparing simulated and emulated fields in the
spectral domain and drives the synthetic data generator (which prescribes a
decaying spectrum mimicking observed surface-temperature variability).
"""

from __future__ import annotations

import numpy as np

from repro.sht.grid import Grid
from repro.sht.transform import (
    SHTPlan,
    bandlimit_from_coeff_count,
    degrees_and_orders,
)

__all__ = [
    "angular_power_spectrum",
    "spectrum_from_grid",
    "red_spectrum",
    "spectral_distance",
]


def angular_power_spectrum(coeffs: np.ndarray) -> np.ndarray:
    """Per-degree power ``C_l`` of flat coefficient vector(s).

    Parameters
    ----------
    coeffs:
        Complex coefficients of shape ``(..., L**2)``.

    Returns
    -------
    numpy.ndarray
        Spectrum of shape ``(..., L)``.
    """
    coeffs = np.asarray(coeffs)
    lmax = bandlimit_from_coeff_count(coeffs.shape[-1])
    ells, _ = degrees_and_orders(lmax)
    power = np.abs(coeffs) ** 2
    out = np.zeros(coeffs.shape[:-1] + (lmax,), dtype=np.float64)
    for ell in range(lmax):
        mask = ells == ell
        out[..., ell] = power[..., mask].sum(axis=-1) / (2 * ell + 1)
    return out


def spectrum_from_grid(field: np.ndarray, lmax: int, grid: Grid | None = None) -> np.ndarray:
    """Angular power spectrum of gridded field(s) (forward SHT then power)."""
    field = np.asarray(field)
    if grid is None:
        grid = Grid(ntheta=field.shape[-2], nphi=field.shape[-1])
    plan = SHTPlan(lmax=lmax, grid=grid)
    return angular_power_spectrum(plan.forward(field))


def red_spectrum(lmax: int, slope: float = -2.5, amplitude: float = 1.0, ell0: float = 5.0) -> np.ndarray:
    """A smooth red (decaying) angular power spectrum.

    ``C_l = amplitude * (1 + l / ell0) ** slope`` — a convenient stand-in
    for the spectra of surface-temperature anomalies, dominated by large
    scales with a power-law tail.
    """
    ells = np.arange(lmax, dtype=np.float64)
    return amplitude * (1.0 + ells / ell0) ** slope


def spectral_distance(spec_a: np.ndarray, spec_b: np.ndarray, eps: float = 1e-30) -> float:
    """Mean absolute log10 ratio between two spectra (lower is closer)."""
    a = np.asarray(spec_a, dtype=np.float64) + eps
    b = np.asarray(spec_b, dtype=np.float64) + eps
    n = min(a.shape[-1], b.shape[-1])
    return float(np.mean(np.abs(np.log10(a[..., :n] / b[..., :n]))))
