"""Wigner small-d matrices evaluated at ``beta = pi/2``.

The fast spherical harmonic transform of the paper (Eqs. 4-8) expands the
colatitude dependence of the harmonics in complex exponentials through the
Fourier representation of the Wigner small-d function,

.. math::

   d^\\ell_{m,n}(\\beta) = i^{m-n} \\sum_{m'=-\\ell}^{\\ell}
       \\Delta^\\ell_{m',m} \\, \\Delta^\\ell_{m',n} \\, e^{-i m' \\beta},
   \\qquad \\Delta^\\ell_{m',m} \\equiv d^\\ell_{m',m}(\\pi/2).

Only the :math:`\\Delta` matrices are therefore needed, and only at the
fixed argument :math:`\\pi/2`.  Three implementations are provided:

``wigner_d_explicit``
    The textbook Wigner sum formula with exact integer factorials.  It is
    O(l) per element and numerically exact for small degrees; it is used as
    the reference in the test-suite.

``wigner_d_pi2``
    The full ``(2l+1) x (2l+1)`` matrix for a single degree via the stable
    degree recursion (vectorised over both orders).

``wigner_d_pi2_all``
    All degrees ``0 .. L-1`` in one sweep of the degree recursion, reusing
    the two previous degrees.  This is the production path; its cost is
    O(L^3) and matches the pre-computation strategy described in the paper
    (Section III-A.2).
"""

from __future__ import annotations

from math import comb, factorial

import numpy as np
from scipy.special import gammaln

__all__ = [
    "wigner_d_explicit",
    "wigner_d_pi2",
    "wigner_d_pi2_all",
    "wigner_d_from_pi2",
]


def wigner_d_explicit(ell: int, beta: float) -> np.ndarray:
    """Wigner small-d matrix ``d^l_{m1,m2}(beta)`` by the explicit sum.

    Returns an array of shape ``(2*ell + 1, 2*ell + 1)`` indexed by
    ``[m1 + ell, m2 + ell]``.  Exact (up to floating point rounding of the
    trigonometric factors) but O(l^3) per matrix with large intermediate
    factorials, so intended for validation at small degree only.
    """
    if ell < 0:
        raise ValueError("degree must be non-negative")
    size = 2 * ell + 1
    out = np.zeros((size, size), dtype=np.float64)
    c = np.cos(beta / 2.0)
    s = np.sin(beta / 2.0)
    for m1 in range(-ell, ell + 1):
        for m2 in range(-ell, ell + 1):
            pref = np.sqrt(
                float(factorial(ell + m1))
                * float(factorial(ell - m1))
                * float(factorial(ell + m2))
                * float(factorial(ell - m2))
            )
            smin = max(0, m2 - m1)
            smax = min(ell + m2, ell - m1)
            total = 0.0
            for k in range(smin, smax + 1):
                denom = (
                    float(factorial(ell + m2 - k))
                    * float(factorial(k))
                    * float(factorial(m1 - m2 + k))
                    * float(factorial(ell - m1 - k))
                )
                power_c = 2 * ell + m2 - m1 - 2 * k
                power_s = m1 - m2 + 2 * k
                total += ((-1.0) ** (m1 - m2 + k)) * (c ** power_c) * (s ** power_s) / denom
            out[m1 + ell, m2 + ell] = pref * total
    return out


def _seed_top_row(j: int) -> np.ndarray:
    """Values ``d^j_{j,n}(pi/2)`` for ``n = -j .. j`` (log-stable)."""
    n = np.arange(-j, j + 1, dtype=np.float64)
    # d^j_{j,n}(pi/2) = (-1)^(j-n) 2^(-j) sqrt( (2j)! / ((j+n)! (j-n)!) )
    log_ratio = gammaln(2 * j + 1) - gammaln(j + n + 1) - gammaln(j - n + 1)
    vals = np.exp(0.5 * log_ratio - j * np.log(2.0))
    signs = np.where(((j - n.astype(int)) % 2) == 0, 1.0, -1.0)
    return signs * vals


def _seed_matrix(ell: int, lmax: int) -> np.ndarray:
    """Seed values ``d^l_{m1,m2}(pi/2)`` for pairs with ``max(|m1|,|m2|) == l``.

    Returns a ``(2*lmax + 1, 2*lmax + 1)`` array (indexed by ``m + lmax``)
    with the seed entries filled in and zeros elsewhere.
    """
    out = np.zeros((2 * lmax + 1, 2 * lmax + 1), dtype=np.float64)
    if ell > lmax:
        raise ValueError("ell exceeds lmax")
    top = _seed_top_row(ell)  # d^l_{l, n}, n = -l..l

    def top_val(n: int) -> float:
        return float(top[n + ell])

    for m1 in range(-ell, ell + 1):
        for m2 in range(-ell, ell + 1):
            if max(abs(m1), abs(m2)) != ell:
                continue
            if abs(m1) >= abs(m2):
                if m1 >= 0:
                    val = top_val(m2)
                else:
                    # d_{m1,m2} = (-1)^(m1-m2) d_{-m1,-m2}
                    val = ((-1.0) ** (m1 - m2)) * top_val(-m2)
            else:
                # d_{m1,m2} = (-1)^(m1-m2) d_{m2,m1}
                if m2 >= 0:
                    val = ((-1.0) ** (m1 - m2)) * top_val(m1)
                else:
                    val = top_val(-m1)
            out[m1 + lmax, m2 + lmax] = val
    return out


def wigner_d_pi2_all(lmax: int) -> list[np.ndarray]:
    """All Wigner-d matrices at ``pi/2`` for degrees ``0 .. lmax - 1``.

    Parameters
    ----------
    lmax:
        Band-limit ``L``; degrees ``0 .. L-1`` are computed.

    Returns
    -------
    list of numpy.ndarray
        ``L`` matrices; entry ``l`` has shape ``(2*l + 1, 2*l + 1)`` and is
        indexed by ``[m1 + l, m2 + l]``.

    Notes
    -----
    Uses the three-term recursion in degree specialised to ``beta = pi/2``,

    .. math::

       \\ell \\sqrt{((\\ell+1)^2 - m_1^2)((\\ell+1)^2 - m_2^2)}
           \\, d^{\\ell+1}_{m_1 m_2}
       = -(2\\ell+1) m_1 m_2 \\, d^{\\ell}_{m_1 m_2}
         - (\\ell+1) \\sqrt{(\\ell^2 - m_1^2)(\\ell^2 - m_2^2)}
           \\, d^{\\ell-1}_{m_1 m_2},

    seeded at ``l = max(|m1|, |m2|)`` with the closed-form sectoral values.
    The recursion is stable at ``pi/2`` for the degrees used here (validated
    against the exact formula in the test-suite).
    """
    if lmax < 1:
        return []
    big = 2 * lmax + 1
    m = np.arange(-lmax, lmax + 1, dtype=np.float64)
    m1 = m[:, None]
    m2 = m[None, :]

    prev2 = np.zeros((big, big), dtype=np.float64)  # degree l-2
    prev1 = np.zeros((big, big), dtype=np.float64)  # degree l-1
    results: list[np.ndarray] = []

    for ell in range(0, lmax):
        cur = np.zeros((big, big), dtype=np.float64)
        if ell >= 2:
            lm1 = float(ell - 1)
            denom = lm1 * np.sqrt(
                np.maximum((ell ** 2 - m1 ** 2), 0.0)
                * np.maximum((ell ** 2 - m2 ** 2), 0.0)
            )
            numer = (
                -(2.0 * lm1 + 1.0) * m1 * m2 * prev1
                - ell
                * np.sqrt(
                    np.maximum((lm1 ** 2 - m1 ** 2), 0.0)
                    * np.maximum((lm1 ** 2 - m2 ** 2), 0.0)
                )
                * prev2
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                rec = np.where(denom > 0.0, numer / np.where(denom > 0.0, denom, 1.0), 0.0)
            interior = (np.abs(m1) <= ell - 1) & (np.abs(m2) <= ell - 1)
            cur[interior] = rec[interior]
        elif ell == 1:
            # Only the (0, 0) entry is "interior" at l=1: d^1_{0,0}(pi/2) = 0.
            cur[lmax, lmax] = 0.0

        # Boundary entries where max(|m1|, |m2|) == ell come from the seeds.
        if ell >= 0:
            seed = _seed_matrix(ell, lmax)
            boundary = (np.maximum(np.abs(m1), np.abs(m2)) == ell) & (
                np.abs(m1) <= ell
            ) & (np.abs(m2) <= ell)
            cur[boundary] = seed[boundary]

        lo, hi = lmax - ell, lmax + ell + 1
        results.append(cur[lo:hi, lo:hi].copy())
        prev2, prev1 = prev1, cur
    return results


def wigner_d_pi2(ell: int) -> np.ndarray:
    """Wigner small-d matrix at ``pi/2`` for a single degree ``ell``."""
    if ell < 0:
        raise ValueError("degree must be non-negative")
    return wigner_d_pi2_all(ell + 1)[ell]


def wigner_d_from_pi2(ell: int, beta: float, delta: np.ndarray | None = None) -> np.ndarray:
    """Reconstruct ``d^l(beta)`` from the ``pi/2`` matrices (Fourier form).

    Implements ``d^l_{m,n}(beta) = i^{m-n} sum_{m'} Delta_{m',m} Delta_{m',n}
    exp(-i m' beta)``; mainly used to validate the Fourier representation
    that underpins the fast transform.
    """
    if delta is None:
        delta = wigner_d_pi2(ell)
    mprime = np.arange(-ell, ell + 1)
    phases = np.exp(-1j * mprime * beta)[:, None, None]
    m = np.arange(-ell, ell + 1)
    ipow = (1j) ** (m[:, None] - m[None, :])
    total = np.einsum("pm,pn,pmn->mn", delta, delta, np.broadcast_to(phases, (2 * ell + 1, 2 * ell + 1, 2 * ell + 1)))
    return np.real(ipow * total)
