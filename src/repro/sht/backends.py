"""Named spherical-harmonic-transform backends.

The spectral stochastic model needs one thing from the SHT layer: a *plan*
object exposing ``forward(fields) -> coeffs`` and ``inverse(coeffs) ->
fields`` at a fixed band-limit and grid.  Two implementations exist — the
production FFT/Wigner plan of :mod:`repro.sht.transform` and the explicit
summation reference of :mod:`repro.sht.direct` — and this module makes them
interchangeable through the shared :class:`~repro.util.registry.BackendRegistry`
mechanism:

* ``"fast"`` — :class:`~repro.sht.transform.SHTPlan`,
  ``O(L^3 + L^2 log L)`` per slice (the paper's transform);
* ``"direct"`` — longitude FFT + exact colatitude quadrature,
  ``O(L^2 N_theta N_phi)`` (exact for band-limited fields when
  ``ntheta >= 2*lmax``);
* ``"direct-lstsq"`` — least-squares projection onto the dense synthesis
  operator (exact on any supporting grid, dense-matrix cost).

New backends register with ``SHT_BACKENDS.register(name, factory)`` where
``factory(lmax=..., grid=...)`` returns a plan-compatible object; the name
then works everywhere an SHT method is selected (notably
``EmulatorConfig.sht_method``) with no changes to the consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sht.direct import direct_forward, direct_inverse
from repro.sht.grid import Grid
from repro.sht.transform import SHTPlan, num_coeffs
from repro.util.registry import BackendRegistry

__all__ = ["SHT_BACKENDS", "DirectSHTPlan"]


@dataclass
class DirectSHTPlan:
    """Plan-compatible wrapper around the direct (reference) transforms.

    Parameters
    ----------
    lmax:
        Band-limit ``L``.
    grid:
        Equiangular grid; must support the band-limit.
    method:
        Analysis method: ``"quadrature"`` (exact for band-limited fields
        when ``ntheta >= 2*lmax``) or ``"lstsq"`` (exact on any supporting
        grid).
    """

    lmax: int
    grid: Grid
    method: str = "quadrature"

    def __post_init__(self) -> None:
        if self.lmax < 1:
            raise ValueError("lmax must be >= 1")
        if not self.grid.supports_bandlimit(self.lmax):
            raise ValueError(
                f"grid {self.grid.shape} cannot support band-limit {self.lmax}"
            )
        if self.method not in ("quadrature", "lstsq"):
            raise ValueError(f"unknown direct analysis method {self.method!r}")

    @property
    def n_coeffs(self) -> int:
        """Length of the coefficient vector, ``L**2``."""
        return num_coeffs(self.lmax)

    def forward(self, data: np.ndarray) -> np.ndarray:
        """Analysis: field(s) ``(..., ntheta, nphi)`` to coefficients."""
        return direct_forward(np.asarray(data), self.lmax, self.grid, method=self.method)

    def inverse(self, coeffs: np.ndarray, real: bool = True) -> np.ndarray:
        """Synthesis: coefficients ``(..., L**2)`` to field(s).

        Stacked ``(n_batch, L**2)`` inputs are synthesised in one dense
        matmul pass with per-slice bit-identical results, matching the
        batched contract of :meth:`SHTPlan.inverse
        <repro.sht.transform.SHTPlan.inverse>`.
        """
        coeffs = np.asarray(coeffs, dtype=np.complex128)
        if coeffs.shape[-1] != self.n_coeffs:
            raise ValueError(
                f"expected {self.n_coeffs} coefficients, got {coeffs.shape[-1]}"
            )
        return direct_inverse(coeffs, self.grid, real=real)


#: Registry of SHT implementations selectable by name (see module docstring).
SHT_BACKENDS = BackendRegistry("SHT backend", doc_hint="docs/api.md#sht-backends")

SHT_BACKENDS.register(
    "fast",
    lambda lmax, grid: SHTPlan(lmax=lmax, grid=grid),
    description=(
        "FFT + Wigner-d fast transform, O(L^3 + L^2 log L) per slice "
        "(paper Eqs. 4-8)"
    ),
    aliases=("fft",),
)
SHT_BACKENDS.register(
    "direct",
    lambda lmax, grid: DirectSHTPlan(lmax=lmax, grid=grid, method="quadrature"),
    description=(
        "explicit-summation reference with exact colatitude quadrature, "
        "O(L^2 Ntheta Nphi) per slice"
    ),
    aliases=("direct-quadrature",),
)
SHT_BACKENDS.register(
    "direct-lstsq",
    lambda lmax, grid: DirectSHTPlan(lmax=lmax, grid=grid, method="lstsq"),
    description=(
        "least-squares projection onto the dense synthesis operator "
        "(exact on any supporting grid)"
    ),
)
