"""Exact colatitude integrals used by the spherical harmonic transforms.

The analysis step of the fast transform (Eq. 7 of the paper) reduces the
colatitude integral to the closed-form quantity

.. math::

   I(q) = \\int_0^{\\pi} e^{i q \\theta} \\sin\\theta \\, d\\theta =
   \\begin{cases}
      \\dfrac{i q \\pi}{2} \\, \\delta_{|q|,1} & q \\text{ odd}, \\\\[6pt]
      \\dfrac{2}{1 - q^2} & q \\text{ even},
   \\end{cases}

(Eq. 8).  This module evaluates :math:`I(q)`, assembles the matrix
``I(m' + m'')`` needed by the contraction in Eq. (7), and derives exact
colatitude quadrature weights on the equiangular grid and its periodic
extension.  The weights are used by the slow reference transform in
:mod:`repro.sht.direct` and by the quadrature tests.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "exponential_sine_integral",
    "integral_matrix",
    "extended_colatitude_weights",
    "colatitude_weights",
]


def exponential_sine_integral(q: np.ndarray | int) -> np.ndarray:
    """Evaluate ``I(q) = integral_0^pi exp(i q theta) sin(theta) dtheta``.

    Accepts scalars or integer arrays and returns complex values following
    Eq. (8): non-zero imaginary part only for ``q = +-1``, and the real
    value ``2 / (1 - q^2)`` for even ``q``.
    """
    q = np.asarray(q, dtype=np.int64)
    out = np.zeros(q.shape, dtype=np.complex128)
    odd = (np.abs(q) % 2) == 1
    unit = np.abs(q) == 1
    out[unit] = 1j * q[unit] * np.pi / 2.0
    even = ~odd
    qe = q[even].astype(np.float64)
    out[even] = 2.0 / (1.0 - qe * qe)
    return out if out.shape else out[()]


def integral_matrix(lmax: int) -> np.ndarray:
    """Matrix ``I[m' + lmax - 1, m'' + lmax - 1] = I(m' + m'')``.

    Both ``m'`` and ``m''`` range over ``-(lmax - 1) .. (lmax - 1)``, giving
    a ``(2*lmax - 1, 2*lmax - 1)`` complex matrix.  This is the quantity
    contracted against ``K_{m, m'}`` in Eq. (7).
    """
    if lmax < 1:
        raise ValueError("lmax must be >= 1")
    m = np.arange(-(lmax - 1), lmax)
    return exponential_sine_integral(m[:, None] + m[None, :])


def extended_colatitude_weights(ntheta: int) -> np.ndarray:
    """Quadrature weights on the extended colatitude grid.

    The extended grid has ``2*ntheta - 2`` equally spaced points
    ``theta_i = 2*pi*i / (2*ntheta - 2)`` covering ``[0, 2*pi)``.  The
    returned weights ``w_i`` satisfy

    ``sum_i w_i f(theta_i) = integral_0^pi f(theta) sin(theta) dtheta``

    exactly for every trigonometric polynomial ``f`` of degree at most
    ``ntheta - 2`` (i.e. free of aliasing on the extended grid).
    """
    if ntheta < 2:
        raise ValueError("ntheta must be >= 2")
    next_ = 2 * ntheta - 2
    q = np.rint(np.fft.fftfreq(next_, d=1.0 / next_)).astype(np.int64)
    iq = exponential_sine_integral(q)
    # w_i = (1/next) sum_q I(q) exp(-i q theta_i)  ==  fft(I)[i] / next
    w_ext = np.fft.fft(iq) / next_
    return np.real(w_ext)


def colatitude_weights(ntheta: int, parity: int = 1) -> np.ndarray:
    """Colatitude weights for integrands with known reflection parity.

    For an integrand ``f`` sampled at ``theta_i = pi * i / (ntheta - 1)``
    (both poles included) whose periodic extension obeys
    ``f(2*pi - theta) = parity * f(theta)``, the returned length-``ntheta``
    weights satisfy

    ``sum_i w_i f(theta_i) = integral_0^pi f(theta) sin(theta) dtheta``

    exactly whenever ``f`` is a trigonometric polynomial of degree at most
    ``ntheta - 2``.  In the spherical-harmonic analysis of order ``m`` both
    ``G_m`` and the band-limited extension of ``Y_{l,m}(theta, 0)`` carry a
    ``(-1)**m`` reflection parity, so their product is reflection-even and
    ``parity=+1`` applies; the odd-parity weights are provided for
    completeness and for integrating ``G_m`` on its own.

    Parameters
    ----------
    ntheta:
        Number of colatitude points.
    parity:
        Either ``+1`` or ``-1``; reflection parity of the integrand.
    """
    if parity not in (1, -1):
        raise ValueError("parity must be +1 or -1")
    w_ext = extended_colatitude_weights(ntheta)
    next_ = 2 * ntheta - 2
    w = np.zeros(ntheta, dtype=np.float64)
    w[0] = w_ext[0]
    w[ntheta - 1] = w_ext[ntheta - 1]
    for i in range(1, ntheta - 1):
        w[i] = w_ext[i] + parity * w_ext[next_ - i]
    return w
