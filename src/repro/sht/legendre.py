"""Normalised associated Legendre functions.

The spherical harmonics used throughout the emulator are the orthonormal
complex harmonics

.. math::

   Y_{\\ell,m}(\\theta, \\phi) = \\sqrt{\\frac{2\\ell+1}{4\\pi}
       \\frac{(\\ell-m)!}{(\\ell+m)!}} P_\\ell^m(\\cos\\theta) e^{i m \\phi},

with the Condon–Shortley phase included in :math:`P_\\ell^m`.  The value at
``phi = 0`` is real and equals the *fully normalised* associated Legendre
function :math:`\\bar{P}_{\\ell m}(\\cos\\theta)` for ``m >= 0``; negative
orders follow from ``Y_{l,-m}(theta, 0) = (-1)^m Y_{l,m}(theta, 0)``.

The recursions used here are the standard stable ones (increasing degree for
fixed order, seeded on the sectoral band ``l == m``), written to operate on
vectorised ``x = cos(theta)`` arrays.  They are accurate to close to machine
precision for degrees well beyond anything exercised in this repository
(``L`` up to a few thousand).
"""

from __future__ import annotations

import numpy as np

__all__ = ["legendre_normalized", "ylm_theta0", "ylm_matrix_theta0"]

_INV_SQRT_4PI = 0.5 / np.sqrt(np.pi)


def legendre_normalized(lmax: int, x: np.ndarray) -> np.ndarray:
    """Fully normalised associated Legendre functions ``Pbar_{l,m}(x)``.

    Parameters
    ----------
    lmax:
        Maximum degree (inclusive).  Degrees ``0..lmax`` and orders
        ``0..l`` are returned.
    x:
        Argument array (``cos(theta)``), any shape, values in ``[-1, 1]``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(lmax + 1, lmax + 1) + x.shape`` where entry
        ``[l, m]`` holds :math:`\\bar{P}_{\\ell m}(x)` (zero for ``m > l``).
        The normalisation is such that
        ``integral over the sphere of (Pbar_{l,m} e^{i m phi})^2 = 1``,
        i.e. ``Pbar_{l,m}(cos theta) = Y_{l,m}(theta, 0)`` for ``m >= 0``.
    """
    x = np.asarray(x, dtype=np.float64)
    if lmax < 0:
        raise ValueError("lmax must be non-negative")
    if np.any(np.abs(x) > 1.0 + 1e-12):
        raise ValueError("Legendre argument must lie in [-1, 1]")
    x = np.clip(x, -1.0, 1.0)

    out = np.zeros((lmax + 1, lmax + 1) + x.shape, dtype=np.float64)
    sin_theta = np.sqrt(np.maximum(0.0, 1.0 - x * x))

    # Sectoral seed: Pbar_{0,0} = 1/sqrt(4 pi).
    out[0, 0] = _INV_SQRT_4PI
    # Sectoral band l == m (includes the Condon-Shortley phase).
    for m in range(1, lmax + 1):
        out[m, m] = -np.sqrt((2.0 * m + 1.0) / (2.0 * m)) * sin_theta * out[m - 1, m - 1]

    # First off-sectoral band l == m + 1.
    for m in range(0, lmax):
        out[m + 1, m] = np.sqrt(2.0 * m + 3.0) * x * out[m, m]

    # General three-term recursion in degree for fixed order.
    for m in range(0, lmax + 1):
        for ell in range(m + 2, lmax + 1):
            a = np.sqrt((4.0 * ell * ell - 1.0) / (ell * ell - m * m))
            b = np.sqrt(((ell - 1.0) ** 2 - m * m) / (4.0 * (ell - 1.0) ** 2 - 1.0))
            out[ell, m] = a * (x * out[ell - 1, m] - b * out[ell - 2, m])
    return out


def ylm_theta0(lmax: int, theta: np.ndarray) -> np.ndarray:
    """Evaluate ``Y_{l,m}(theta, 0)`` for all degrees and orders.

    Returns an array of shape ``(lmax + 1, 2 * lmax + 1) + theta.shape``
    where the order axis is indexed by ``m + lmax`` for
    ``m = -lmax .. lmax``.  Entries with ``|m| > l`` are zero.

    Negative orders use ``Y_{l,-m}(theta, 0) = (-1)^m Y_{l,m}(theta, 0)``.
    """
    theta = np.asarray(theta, dtype=np.float64)
    pbar = legendre_normalized(lmax, np.cos(theta))
    out = np.zeros((lmax + 1, 2 * lmax + 1) + theta.shape, dtype=np.float64)
    for ell in range(lmax + 1):
        for m in range(0, ell + 1):
            out[ell, lmax + m] = pbar[ell, m]
            if m > 0:
                out[ell, lmax - m] = ((-1) ** m) * pbar[ell, m]
    return out


def ylm_matrix_theta0(lmax: int, theta: np.ndarray) -> np.ndarray:
    """``Y_{l,m}(theta, 0)`` flattened over the coefficient index.

    Returns an array of shape ``(num_coeffs, theta.size)`` where the first
    axis is the flat ``(l, m)`` index ``l*l + l + m`` used by the transforms
    (see :func:`repro.sht.transform.coeff_index`).
    """
    theta = np.atleast_1d(np.asarray(theta, dtype=np.float64))
    full = ylm_theta0(lmax, theta)
    n = (lmax + 1) ** 2
    out = np.zeros((n, theta.size), dtype=np.float64)
    for ell in range(lmax + 1):
        for m in range(-ell, ell + 1):
            out[ell * ell + ell + m] = full[ell, lmax + m]
    return out
