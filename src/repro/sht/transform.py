"""Fast spherical harmonic transform (Eqs. 4-8 of the paper).

The forward (analysis) transform of a field ``Z(theta_i, phi_j)`` sampled on
an equiangular grid proceeds in four steps:

1. an FFT along longitude produces
   ``G_m(theta_i) = integral Z(theta_i, phi) exp(-i m phi) dphi``,
2. ``G_m`` is extended to colatitudes in ``(pi, 2*pi)`` through
   ``G_m(2*pi - theta) = (-1)**m G_m(theta)`` and an FFT along the extended
   colatitude yields the Fourier coefficients ``K_{m, m'}`` of Eq. (6),
3. the closed-form integrals ``I(m' + m'')`` of Eq. (8) contract ``K`` into
   ``W_{m, m''} = sum_{m'} K_{m, m'} I(m' + m'')``,
4. the Wigner-d matrices at ``pi/2`` assemble the coefficients
   ``f_{l,m} = sum_{m''} S_{l, m, m''} W_{m, m''}`` with
   ``S_{l, m, m''} = i^{-m} sqrt((2l+1)/(4*pi)) Delta^l_{m'', 0}
   Delta^l_{m'', m}`` (Eq. 7).

The inverse (synthesis) transform runs the same factorisation backwards:
Wigner-d contraction to the colatitude Fourier coefficients, FFT to
``G_m(theta_i)``, FFT to the field.  Both directions cost
``O(L^3 + L^2 log L)`` per time slice and are embarrassingly parallel over
time slices (paper Section III-A.2); the batched implementations below
vectorise over an arbitrary number of leading axes.

All data-independent quantities (Wigner-d matrices, the ``I`` matrix, FFT
frequency bookkeeping) live in :class:`SHTPlan` and are computed once, which
is the pre-computation strategy the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.linalg.flops import sht_contraction_flops
from repro.obs import span
from repro.sht.grid import Grid
from repro.sht.quadrature import integral_matrix
from repro.sht.wigner import wigner_d_pi2_all

__all__ = [
    "bandlimit_from_coeff_count",
    "coeff_index",
    "coeff_lm",
    "num_coeffs",
    "SHTPlan",
    "sht_forward",
    "sht_inverse",
]

#: Leading slices synthesised per FFT pass in :meth:`SHTPlan.inverse`.  The
#: inverse FFTs are memory-bound; keeping the per-pass working set at
#: ``~block * (2L-1) * (2*ntheta-2) * 16`` bytes (a few MB) preserves cache
#: locality on large stacked batches.  Blocking never changes results: the
#: FFTs are independent per leading slice.
_SYNTHESIS_BLOCK = 32

#: Leading slices analysed per FFT pass in :meth:`SHTPlan.forward` — the
#: analysis counterpart of :data:`_SYNTHESIS_BLOCK`.  The two forward FFT
#: stages materialise an extended-colatitude complex intermediate of
#: ``(2*ntheta-2) * (2L-1) * 16`` bytes per slice; blocking bounds the
#: peak working set on stacked ``(R, T, ntheta, nphi)`` ensembles (the
#: `fit` hot path) instead of allocating it for the whole record at
#: once.  Blocking never changes results: every stage is independent per
#: leading slice.
_ANALYSIS_BLOCK = 32


# --------------------------------------------------------------------------- #
# Coefficient indexing
# --------------------------------------------------------------------------- #
def num_coeffs(lmax: int) -> int:
    """Number of spherical-harmonic coefficients below band-limit ``lmax``.

    Degrees ``0 .. lmax - 1`` with orders ``-l .. l`` give ``lmax**2``
    coefficients, which is the length of the spectral vector ``f_t`` in the
    paper (the ``L^2 x T`` matrix ``F``).
    """
    if lmax < 1:
        raise ValueError("lmax must be >= 1")
    return lmax * lmax


def bandlimit_from_coeff_count(n: int) -> int:
    """The band-limit ``L`` whose coefficient vector has length ``n``.

    The exact inverse of :func:`num_coeffs`: ``n`` must be a perfect
    square ``L**2`` (a full ``(l, m)`` set), anything else raises
    ``ValueError``.  Recovery uses :func:`math.isqrt`, never a rounded
    float square root — ``round(sqrt(n))`` silently truncates or
    misreads malformed vectors near large perfect squares.
    """
    n = int(n)
    if n < 1:
        raise ValueError(f"coefficient count must be >= 1, got {n}")
    lmax = math.isqrt(n)
    if lmax * lmax != n:
        raise ValueError(
            f"coefficient count {n} is not a perfect square L**2; "
            f"got a trailing axis that cannot hold a full (l, m) set"
        )
    return lmax


def coeff_index(ell: int, m: int) -> int:
    """Flat index of coefficient ``(l, m)``: ``l*l + l + m``."""
    if abs(m) > ell:
        raise ValueError(f"invalid order m={m} for degree l={ell}")
    return ell * ell + ell + m


def coeff_lm(index: int) -> tuple[int, int]:
    """Inverse of :func:`coeff_index`: returns ``(l, m)`` for a flat index.

    Exact for every non-negative integer: the degree is recovered with
    :func:`math.isqrt` rather than a float square root, whose rounding
    near large perfect squares (e.g. ``index = (2**27)**2 - 1``) would
    otherwise produce an invalid ``m < -l`` pair.
    """
    index = int(index)
    if index < 0:
        raise ValueError("index must be non-negative")
    ell = math.isqrt(index)
    m = index - ell * ell - ell
    return ell, m


def degrees_and_orders(lmax: int) -> tuple[np.ndarray, np.ndarray]:
    """Arrays of degree and order for every flat coefficient index.

    Built by integer arithmetic alone (degree ``l`` repeats ``2l + 1``
    times), so the result is exact at every index — no float square root
    is involved.
    """
    ells = np.repeat(np.arange(lmax), 2 * np.arange(lmax) + 1)
    idx = np.arange(num_coeffs(lmax))
    ms = idx - ells * ells - ells
    return ells, ms


# --------------------------------------------------------------------------- #
# Transform plan
# --------------------------------------------------------------------------- #
@dataclass
class SHTPlan:
    """Precomputed operators for the fast transform at a fixed band-limit.

    Parameters
    ----------
    lmax:
        Band-limit ``L``; coefficients cover degrees ``0 .. L-1``.
    grid:
        Equiangular grid the transform operates on.  It must satisfy
        ``ntheta >= L + 1`` and ``nphi >= 2L - 1``.

    Notes
    -----
    The plan stores the Wigner-d matrices at ``pi/2`` for every degree
    (``O(L^3)`` memory, as in the paper's pre-computation strategy), the
    ``(2L-1) x (2L-1)`` matrix ``I(m' + m'')``, index maps between FFT
    bins and signed orders, and per-signed-order GEMM operators for both
    transform directions (:meth:`_synthesis_operators` /
    :meth:`_analysis_operators`, built eagerly so shared cached plans
    stay immutable).
    """

    lmax: int
    grid: Grid
    _delta: list[np.ndarray] = field(init=False, repr=False)
    _imat: np.ndarray = field(init=False, repr=False)
    _syn_cols: "list[np.ndarray] | None" = field(init=False, default=None, repr=False)
    _syn_ops: "list[np.ndarray] | None" = field(init=False, default=None, repr=False)
    _ana_ops: "list[np.ndarray] | None" = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.lmax < 1:
            raise ValueError("lmax must be >= 1")
        if not self.grid.supports_bandlimit(self.lmax):
            raise ValueError(
                f"grid {self.grid.shape} cannot support band-limit {self.lmax}: "
                f"requires ntheta >= {self.lmax + 1} and nphi >= {2 * self.lmax - 1}"
            )
        self._delta = wigner_d_pi2_all(self.lmax)
        self._imat = integral_matrix(self.lmax)
        # Built eagerly: plans are shared process-wide through the plan
        # cache and must be immutable after construction (a lazy build
        # would race under concurrent forward()/inverse() calls from
        # campaign worker threads).
        self._synthesis_operators()
        self._analysis_operators()

    # -- derived sizes ----------------------------------------------------- #
    @property
    def n_orders(self) -> int:
        """Number of signed orders, ``2L - 1``."""
        return 2 * self.lmax - 1

    @property
    def n_coeffs(self) -> int:
        """Length of the coefficient vector, ``L**2``."""
        return num_coeffs(self.lmax)

    @property
    def ntheta_ext(self) -> int:
        """Length of the extended colatitude grid, ``2*ntheta - 2``."""
        return 2 * self.grid.ntheta - 2

    @property
    def wigner(self) -> list[np.ndarray]:
        """Wigner-d matrices at ``pi/2`` for degrees ``0 .. L-1``."""
        return self._delta

    @property
    def integral(self) -> np.ndarray:
        """Matrix ``I(m' + m'')`` of Eq. (8)."""
        return self._imat

    def orders(self) -> np.ndarray:
        """Signed orders ``-(L-1) .. L-1`` in ascending order."""
        return np.arange(-(self.lmax - 1), self.lmax)

    # -- internal helpers --------------------------------------------------- #
    def _fft_bins_for_orders(self, nfft: int) -> np.ndarray:
        """FFT bin index for each signed order on a length-``nfft`` FFT."""
        m = self.orders()
        return np.where(m >= 0, m, nfft + m)

    # ------------------------------------------------------------------ #
    # Forward (analysis)
    # ------------------------------------------------------------------ #
    def longitude_fourier(self, data: np.ndarray) -> np.ndarray:
        """Step 1: ``G_m(theta)`` for all signed orders.

        Parameters
        ----------
        data:
            Real or complex field(s) of shape ``(..., ntheta, nphi)``.

        Returns
        -------
        numpy.ndarray
            ``G`` of shape ``(..., ntheta, 2L-1)`` with the order axis in
            ascending signed order.
        """
        nphi = self.grid.nphi
        spec = np.fft.fft(data, axis=-1) * (2.0 * np.pi / nphi)
        bins = self._fft_bins_for_orders(nphi)
        return spec[..., bins]

    def colatitude_fourier(self, g: np.ndarray) -> np.ndarray:
        """Steps 2: extended-colatitude FFT producing ``K_{m, m'}``.

        Parameters
        ----------
        g:
            ``G_m(theta_i)`` of shape ``(..., ntheta, 2L-1)``.

        Returns
        -------
        numpy.ndarray
            ``K`` of shape ``(..., 2L-1, 2L-1)`` indexed ``[..., m, m']``.
        """
        ntheta = self.grid.ntheta
        next_ = self.ntheta_ext
        m = self.orders()
        parity = np.where(m % 2 == 0, 1.0, -1.0)

        shape = g.shape[:-2] + (next_, self.n_orders)
        g_ext = np.empty(shape, dtype=np.complex128)
        g_ext[..., :ntheta, :] = g
        # G_m(2*pi - theta) = (-1)**m G_m(theta); extended index i maps back
        # to ntheta-grid index (next - i) for i in [ntheta, next).
        mirror = g[..., ntheta - 2:0:-1, :]
        g_ext[..., ntheta:, :] = parity * mirror

        k_full = np.fft.fft(g_ext, axis=-2) / next_
        bins = self._fft_bins_for_orders(next_)
        k = k_full[..., bins, :]
        # axes currently (..., m', m); transpose to (..., m, m')
        return np.swapaxes(k, -1, -2)

    def _analysis_operators(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-order analysis operators, built once in ``__post_init__``.

        The adjoint view of :meth:`_synthesis_operators`: for each signed
        order ``m`` the Eq. (7)-(8) assembly reduces to
        ``f[cols_m] = K_{m, :} @ A_m`` with ``A_m = I @ S_m.T`` — the
        transpose of the synthesis operator (same Wigner tables, same
        folded ``i^{-m}`` phase) with the closed-form integral matrix
        ``I(m' + m'')`` of Eq. (8) folded in, so the whole forward
        contraction runs as exactly ``2L-1`` BLAS GEMMs over the
        flattened batch, with no separate ``W = K @ I`` intermediate.
        ``cols_m`` is shared with the synthesis side; folding ``I``
        changes only the association order of the degree sum (pinned
        ``<= 1e-12`` of the per-degree reference by tests).
        """
        if self._ana_ops is None:
            _, syn_ops = self._synthesis_operators()
            self._ana_ops = [
                np.ascontiguousarray(self._imat @ op.T) for op in syn_ops
            ]
        return self._syn_cols, self._ana_ops

    def wigner_contraction_forward(self, k: np.ndarray) -> np.ndarray:
        """Steps 3-4: contract ``K`` into the coefficient vector (Eq. 7).

        Implemented as one GEMM per signed order against the precomputed
        operators of :meth:`_analysis_operators`, with all leading batch
        axes flattened into the GEMM row dimension — the same ``O(L^3)``
        arithmetic as the per-degree reference
        (:meth:`wigner_contraction_forward_reference`, matched to within
        reassociation error; the degree loop becomes the GEMM column
        dimension) but an order of magnitude faster and per-slice
        independent, so batched and per-slice calls agree bit for bit.
        """
        k = np.asarray(k, dtype=np.complex128)
        cols, ops = self._analysis_operators()
        lead = k.shape[:-2]
        flat = np.ascontiguousarray(k.reshape((-1,) + k.shape[-2:]))
        n_rows = flat.shape[0]
        if n_rows == 1:
            # Same gemv-vs-gemm guard as the inverse contraction: BLAS
            # hands single-row products to gemv, whose reduction order can
            # differ from the gemm kernels used for taller stacks.
            # Duplicating the row keeps every batch height on the same
            # kernel family, so per-slice results do not depend on how
            # many slices were stacked together.
            flat = np.concatenate([flat, flat], axis=0)
        coeffs = np.empty((flat.shape[0], self.n_coeffs), dtype=np.complex128)
        for mi in range(self.n_orders):
            coeffs[:, cols[mi]] = flat[:, mi, :] @ ops[mi]
        return coeffs[:n_rows].reshape(lead + (self.n_coeffs,))

    def wigner_contraction_forward_reference(self, k: np.ndarray) -> np.ndarray:
        """Literal per-degree assembly of Eq. (7) (validation reference).

        Kept as the readable transcription of the paper's analysis
        contraction; the production :meth:`wigner_contraction_forward`
        must match it to within floating-point reassociation error
        (pinned by the test-suite).
        """
        lmax = self.lmax
        w = k @ self._imat  # (..., m, m'')
        out_shape = k.shape[:-2] + (self.n_coeffs,)
        coeffs = np.zeros(out_shape, dtype=np.complex128)
        centre = lmax - 1  # index of order 0 on the signed-order axis
        m_all = self.orders()
        i_pow_neg_m = (1j) ** (-m_all)
        for ell in range(lmax):
            delta = self._delta[ell]  # (2l+1, 2l+1) indexed [m''+l, m+l]
            norm = np.sqrt((2.0 * ell + 1.0) / (4.0 * np.pi))
            sl = slice(centre - ell, centre + ell + 1)
            # W restricted to |m| <= l and |m''| <= l
            w_sub = w[..., sl, sl]  # (..., m, m'')
            delta0 = delta[:, ell]  # Delta^l_{m'', 0}
            weighted = w_sub * delta0  # broadcast over m''
            # sum over m'': result (..., m)
            summed = np.einsum("...ab,ba->...a", weighted, delta)
            phases = i_pow_neg_m[centre - ell: centre + ell + 1]
            block = norm * phases * summed
            start = ell * ell
            coeffs[..., start:start + 2 * ell + 1] = block
        return coeffs

    def _analyze_block(self, data: np.ndarray) -> np.ndarray:
        """One unblocked analysis pass: FFT stages plus GEMM contraction."""
        with span("sht.forward.fft"):
            g = self.longitude_fourier(data)
            k = self.colatitude_fourier(g)
        n_slices = int(np.prod(k.shape[:-2])) if k.shape[:-2] else 1
        with span(
            "sht.forward.contraction",
            flops=sht_contraction_flops(self.lmax, n_slices),
        ):
            return self.wigner_contraction_forward(k)

    def forward(self, data: np.ndarray) -> np.ndarray:
        """Full analysis: grid field(s) to spectral coefficients.

        Parameters
        ----------
        data:
            Real or complex field(s) of shape ``(..., ntheta, nphi)``;
            any leading batch shape is transformed independently per
            leading slice.  Stacked batches — e.g. a whole training
            ensemble ``(R, T, ntheta, nphi)``, the `fit` hot path — are
            analysed in internally blocked passes of
            :data:`_ANALYSIS_BLOCK` leading slices, so peak memory is
            bounded by the block instead of the full extended-colatitude
            complex intermediate of the whole record.

        Returns
        -------
        numpy.ndarray
            ``complex128`` coefficients of shape ``(..., L**2)`` in flat
            ``(l, m)`` order (``idx = l*l + l + m``).  Deterministic and
            batch-invariant: the same input always yields bit-identical
            coefficients, and ``plan.forward(stacked)[b]`` is
            bit-identical to ``plan.forward(stacked[b])`` — every stage
            (both FFTs, the per-order GEMM contraction) operates
            independently per leading slice.
        """
        data = np.asarray(data)
        if data.shape[-2:] != self.grid.shape:
            raise ValueError(
                f"field shape {data.shape[-2:]} does not match grid {self.grid.shape}"
            )
        lead = data.shape[:-2]
        n_flat = int(np.prod(lead)) if lead else 1
        with span("sht.forward", lmax=self.lmax, slices=n_flat, bytes=data.nbytes):
            if n_flat <= _ANALYSIS_BLOCK:
                return self._analyze_block(data)
            flat = data.reshape((n_flat,) + self.grid.shape)
            coeffs = np.empty((n_flat, self.n_coeffs), dtype=np.complex128)
            for start in range(0, n_flat, _ANALYSIS_BLOCK):
                block = flat[start:start + _ANALYSIS_BLOCK]
                coeffs[start:start + _ANALYSIS_BLOCK] = self._analyze_block(block)
            return coeffs.reshape(lead + (self.n_coeffs,))

    # ------------------------------------------------------------------ #
    # Inverse (synthesis)
    # ------------------------------------------------------------------ #
    def _synthesis_operators(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-order synthesis operators, built once in ``__post_init__``.

        For each signed order ``m`` the contraction of Eq. (7) reduces to a
        dense matrix product over the degrees carrying that order:
        ``C_{m, :} = f[cols_m] @ S_m`` with
        ``S_m[l, m'] = i^{-m} sqrt((2l+1)/(4*pi)) Delta^l_{m', 0}
        Delta^l_{m', m}`` and ``cols_m`` the flat coefficient indices of
        ``(l, m)`` for ``l = |m| .. L-1``.  Casting the contraction this
        way turns the per-degree accumulation loop into ``2L-1`` BLAS
        GEMMs over the (flattened) batch — the batched synthesis hot path.
        Total operator storage is ``L**2 * (2L-1)`` complex values, the
        same order as the Wigner tables themselves.
        """
        if self._syn_cols is None:
            lmax = self.lmax
            centre = lmax - 1
            i_pow_neg_m = (1j) ** (-self.orders())
            cols: list[np.ndarray] = []
            ops: list[np.ndarray] = []
            for mi in range(self.n_orders):
                m = mi - centre
                ells = np.arange(abs(m), lmax)
                cols.append(ells * ells + ells + m)
                op = np.zeros((len(ells), self.n_orders))
                for row, ell in enumerate(ells):
                    delta = self._delta[ell]
                    norm = np.sqrt((2.0 * ell + 1.0) / (4.0 * np.pi))
                    op[row, centre - ell: centre + ell + 1] = (
                        norm * delta[:, ell] * delta[:, m + ell]
                    )
                # The i^{-m} phase is one of {1, i, -1, -i}: folding it into
                # the operator is exact (sign flips / real-imag swaps only).
                ops.append(i_pow_neg_m[mi] * op.astype(np.complex128))
            self._syn_ops = ops
            self._syn_cols = cols
        return self._syn_cols, self._syn_ops

    def wigner_contraction_inverse(self, coeffs: np.ndarray) -> np.ndarray:
        """Map coefficients to colatitude Fourier coefficients ``C_{m, m'}``.

        ``H_m(theta) = sum_l f_{l,m} Y_{l,m}(theta, 0)
                     = sum_{m'} C_{m, m'} exp(i m' theta)``.

        Implemented as one GEMM per signed order against the precomputed
        operators of :meth:`_synthesis_operators`, with all leading batch
        axes flattened into the GEMM row dimension — same ``O(L^3)``
        arithmetic as the per-degree reference
        (:meth:`wigner_contraction_inverse_reference`, equal to within a
        few ULPs; the degree sum runs inside the dot product instead of
        as a Python accumulation loop) but an order of magnitude faster
        and per-slice independent, so batched and per-slice calls agree
        bit for bit.
        """
        coeffs = np.asarray(coeffs, dtype=np.complex128)
        cols, ops = self._synthesis_operators()
        lead = coeffs.shape[:-1]
        flat = np.ascontiguousarray(coeffs.reshape(-1, coeffs.shape[-1]))
        n_rows = flat.shape[0]
        if n_rows == 1:
            # BLAS hands single-row products to gemv, whose reduction order
            # can differ from the gemm kernels used for taller stacks;
            # duplicating the row keeps every batch height on the same
            # kernel family, so per-slice results do not depend on how many
            # slices were stacked together.
            flat = np.concatenate([flat, flat], axis=0)
        c = np.empty((flat.shape[0], self.n_orders, self.n_orders), dtype=np.complex128)
        for mi in range(self.n_orders):
            np.matmul(flat[:, cols[mi]], ops[mi], out=c[:, mi, :])
        return c[:n_rows].reshape(lead + (self.n_orders, self.n_orders))

    def wigner_contraction_inverse_reference(self, coeffs: np.ndarray) -> np.ndarray:
        """Literal per-degree accumulation of Eq. (7) (validation reference).

        Kept as the readable transcription of the paper's synthesis
        contraction; the production :meth:`wigner_contraction_inverse`
        must match it to within floating-point reassociation error
        (pinned by the test-suite).
        """
        lmax = self.lmax
        centre = lmax - 1
        shape = coeffs.shape[:-1] + (self.n_orders, self.n_orders)
        c = np.zeros(shape, dtype=np.complex128)
        m_all = self.orders()
        i_pow_neg_m = (1j) ** (-m_all)
        for ell in range(lmax):
            delta = self._delta[ell]
            norm = np.sqrt((2.0 * ell + 1.0) / (4.0 * np.pi))
            start = ell * ell
            f_l = coeffs[..., start:start + 2 * ell + 1]  # (..., m)
            delta0 = delta[:, ell]  # (m'',)
            # S_{l, m, m'} = i^{-m} norm * Delta_{m', 0} * Delta_{m', m}
            # C_{m, m'} += f_{l,m} S_{l,m,m'}
            contrib = np.einsum("...a,ba->...ab", f_l, delta * delta0[:, None])
            phases = i_pow_neg_m[centre - ell: centre + ell + 1]
            contrib = norm * contrib * phases[:, None]
            sl = slice(centre - ell, centre + ell + 1)
            c[..., sl, sl] += contrib
        return c

    def synthesis_from_fourier(self, c: np.ndarray, real: bool = True) -> np.ndarray:
        """Evaluate the field from colatitude Fourier coefficients ``C``.

        Parameters
        ----------
        c:
            ``complex128`` coefficients of shape ``(..., 2L-1, 2L-1)``
            indexed ``[..., m, m']``.  Any leading batch shape is allowed
            — stacked inputs (e.g. ``(n_batch, T, 2L-1, 2L-1)``) are
            synthesised in single vectorised FFT passes, and each leading
            slice of the output is bit-identical to transforming that
            slice alone.
        real:
            Return ``float64`` (the real part) instead of ``complex128``.

        Returns
        -------
        numpy.ndarray
            Field(s) of shape ``(..., ntheta, nphi)``.
        """
        ntheta = self.grid.ntheta
        nphi = self.grid.nphi
        next_ = self.ntheta_ext

        # H_m(theta_i) for the extended grid via inverse FFT over m'.
        full = np.zeros(c.shape[:-1] + (next_,), dtype=np.complex128)
        bins = self._fft_bins_for_orders(next_)
        full[..., bins] = c
        h_ext = np.fft.ifft(full, axis=-1) * next_
        h = h_ext[..., :ntheta]  # (..., m, theta)
        h = np.swapaxes(h, -1, -2)  # (..., theta, m)

        # Z(theta_i, phi_j) = sum_m H_m(theta_i) exp(i m phi_j)
        full_phi = np.zeros(h.shape[:-1] + (nphi,), dtype=np.complex128)
        bins_phi = self._fft_bins_for_orders(nphi)
        full_phi[..., bins_phi] = h
        z = np.fft.ifft(full_phi, axis=-1) * nphi
        return np.real(z) if real else z

    def inverse(self, coeffs: np.ndarray, real: bool = True) -> np.ndarray:
        """Full synthesis: spectral coefficients to grid field(s).

        Parameters
        ----------
        coeffs:
            Complex coefficients of shape ``(..., L**2)`` in flat
            ``(l, m)`` order (cast to ``complex128``).  Any leading batch
            shape is allowed: a stacked ``(n_batch, L**2)`` (or
            ``(n_batch, T, L**2)``) array is synthesised in one
            einsum/FFT pass per step rather than per slice — this is the
            batched hot path of emulation synthesis.
        real:
            Return only the real part as ``float64`` (appropriate for
            real fields whose coefficients satisfy the conjugate
            symmetry); otherwise ``complex128``.

        Returns
        -------
        numpy.ndarray
            Field(s) of shape ``(..., ntheta, nphi)``.

        Notes
        -----
        Deterministic and batch-invariant: the transform involves no
        randomness, and every arithmetic step (Wigner contraction, both
        FFTs) operates independently per leading slice, so
        ``plan.inverse(stacked)[b]`` is bit-identical to
        ``plan.inverse(stacked[b])``.  The batched-emulation machinery
        (:func:`repro.run_campaign` with ``batch_size > 1``) relies on
        this guarantee.
        """
        coeffs = np.asarray(coeffs, dtype=np.complex128)
        if coeffs.shape[-1] != self.n_coeffs:
            raise ValueError(
                f"expected {self.n_coeffs} coefficients, got {coeffs.shape[-1]}"
            )
        lead_in = coeffs.shape[:-1]
        n_slices = int(np.prod(lead_in)) if lead_in else 1
        with span("sht.inverse", lmax=self.lmax, slices=n_slices, bytes=coeffs.nbytes):
            with span(
                "sht.inverse.contraction",
                flops=sht_contraction_flops(self.lmax, n_slices),
            ):
                c = self.wigner_contraction_inverse(coeffs)
            lead = c.shape[:-2]
            n_flat = int(np.prod(lead)) if lead else 1
            with span("sht.inverse.fft", slices=n_flat):
                if n_flat <= _SYNTHESIS_BLOCK:
                    return self.synthesis_from_fourier(c, real=real)
                flat = c.reshape((n_flat,) + c.shape[-2:])
                out = np.empty(
                    (n_flat,) + self.grid.shape,
                    dtype=np.float64 if real else np.complex128,
                )
                for start in range(0, n_flat, _SYNTHESIS_BLOCK):
                    block = flat[start:start + _SYNTHESIS_BLOCK]
                    out[start:start + _SYNTHESIS_BLOCK] = self.synthesis_from_fourier(
                        block, real=real
                    )
                return out.reshape(lead + self.grid.shape)

    # ------------------------------------------------------------------ #
    # Utilities
    # ------------------------------------------------------------------ #
    def random_coefficients(
        self,
        rng: np.random.Generator,
        power: np.ndarray | None = None,
        real_field: bool = True,
        shape: tuple[int, ...] = (),
    ) -> np.ndarray:
        """Draw random coefficients, optionally matching a power spectrum.

        Parameters
        ----------
        rng:
            NumPy random generator.
        power:
            Optional per-degree angular power spectrum ``C_l`` (length
            ``L``); coefficients are scaled so that
            ``E[|f_{l,m}|^2] = C_l``.
        real_field:
            Enforce the conjugate symmetry
            ``f_{l,-m} = (-1)**m conj(f_{l,m})`` so the synthesised field is
            real.
        shape:
            Extra leading batch shape.
        """
        n = self.n_coeffs
        out = np.zeros(shape + (n,), dtype=np.complex128)
        for ell in range(self.lmax):
            scale = 1.0 if power is None else np.sqrt(max(power[ell], 0.0))
            # m = 0: real
            out[..., coeff_index(ell, 0)] = rng.standard_normal(shape) * scale
            for m in range(1, ell + 1):
                re = rng.standard_normal(shape)
                im = rng.standard_normal(shape)
                val = (re + 1j * im) / np.sqrt(2.0) * scale
                out[..., coeff_index(ell, m)] = val
                if real_field:
                    out[..., coeff_index(ell, -m)] = ((-1) ** m) * np.conj(val)
                else:
                    re2 = rng.standard_normal(shape)
                    im2 = rng.standard_normal(shape)
                    out[..., coeff_index(ell, -m)] = (re2 + 1j * im2) / np.sqrt(2.0) * scale
        return out


# --------------------------------------------------------------------------- #
# Convenience wrappers
# --------------------------------------------------------------------------- #
def sht_forward(data: np.ndarray, lmax: int, grid: Grid | None = None) -> np.ndarray:
    """One-shot forward transform (builds a throw-away plan)."""
    data = np.asarray(data)
    if grid is None:
        grid = Grid(ntheta=data.shape[-2], nphi=data.shape[-1])
    return SHTPlan(lmax=lmax, grid=grid).forward(data)


def sht_inverse(coeffs: np.ndarray, grid: Grid, real: bool = True) -> np.ndarray:
    """One-shot inverse transform (builds a throw-away plan).

    The trailing axis must hold a full coefficient set, i.e. its length
    must be a perfect square ``L**2``; anything else raises
    ``ValueError`` (see :func:`bandlimit_from_coeff_count`).
    """
    coeffs = np.asarray(coeffs)
    lmax = bandlimit_from_coeff_count(coeffs.shape[-1])
    return SHTPlan(lmax=lmax, grid=grid).inverse(coeffs, real=real)
