"""Spherical harmonic transform (SHT) substrate.

This subpackage implements the spherical-harmonic machinery used by the
climate emulator (paper Section III-A.1/III-A.2):

* :mod:`repro.sht.legendre` — normalised associated Legendre functions with
  stable three-term recursions (the ``Y_{l,m}(theta, 0)`` factors).
* :mod:`repro.sht.wigner` — Wigner small-d matrices evaluated at ``pi/2``
  (the ``Delta`` matrices), both an explicit reference implementation and a
  vectorised degree recursion used in production.
* :mod:`repro.sht.quadrature` — the exact integrals ``I(q)`` of Eq. (8) and
  colatitude quadrature weights derived from them.
* :mod:`repro.sht.grid` — equiangular latitude/longitude grids (ERA5-like)
  and the extended-colatitude construction of Eq. (6).
* :mod:`repro.sht.transform` — the fast forward and inverse transforms of
  Eqs. (4)-(8): FFT along longitude, FFT along the extended colatitude, and
  the Wigner-d contraction, with an explicit precomputed plan.
* :mod:`repro.sht.direct` — slow direct transforms used for validation.
* :mod:`repro.sht.plancache` — the process-safe cache of precomputed plans
  shared by every model and campaign worker in a process.
* :mod:`repro.sht.spectrum` — angular power spectra and spectral utilities.

Coefficients are stored in a flat complex vector of length ``L**2`` indexed
by ``idx = l*l + l + m`` for degree ``0 <= l < L`` and order ``-l <= m <= l``
(see :func:`repro.sht.transform.coeff_index`).
"""

from repro.sht.grid import Grid, extended_colatitude_length
from repro.sht.legendre import legendre_normalized, ylm_theta0
from repro.sht.quadrature import exponential_sine_integral, integral_matrix
from repro.sht.transform import (
    SHTPlan,
    coeff_index,
    coeff_lm,
    num_coeffs,
    sht_forward,
    sht_inverse,
)
from repro.sht.direct import direct_forward, direct_inverse
from repro.sht.backends import SHT_BACKENDS, DirectSHTPlan
from repro.sht.plancache import (
    clear_plan_cache,
    get_plan,
    plan_cache_key,
    plan_cache_stats,
)
from repro.sht.spectrum import angular_power_spectrum, spectrum_from_grid
from repro.sht.wigner import wigner_d_pi2, wigner_d_pi2_all, wigner_d_explicit

__all__ = [
    "DirectSHTPlan",
    "Grid",
    "SHTPlan",
    "SHT_BACKENDS",
    "angular_power_spectrum",
    "clear_plan_cache",
    "coeff_index",
    "coeff_lm",
    "direct_forward",
    "direct_inverse",
    "exponential_sine_integral",
    "extended_colatitude_length",
    "get_plan",
    "integral_matrix",
    "legendre_normalized",
    "num_coeffs",
    "plan_cache_key",
    "plan_cache_stats",
    "sht_forward",
    "sht_inverse",
    "spectrum_from_grid",
    "wigner_d_explicit",
    "wigner_d_pi2",
    "wigner_d_pi2_all",
    "ylm_theta0",
]
