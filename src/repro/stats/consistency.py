"""Simulation-versus-emulation consistency reports (paper Figs. 2 and 4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.ensemble import ClimateEnsemble
from repro.sht.spectrum import spectral_distance, spectrum_from_grid
from repro.stats.distributions import ks_distance
from repro.stats.moments import (
    field_moments,
    pointwise_moment_fields,
    temporal_autocorrelation,
)

__all__ = ["ConsistencyReport", "consistency_report"]


@dataclass(frozen=True)
class ConsistencyReport:
    """Summary of how closely an emulation matches its training simulation.

    All difference metrics are scalar and "smaller is better"; the report is
    the quantitative counterpart of the paper's visual Fig. 2 / Fig. 4
    comparison.
    """

    global_mean_diff_k: float
    global_std_ratio: float
    pointwise_mean_rmse_k: float
    pointwise_std_rmse_k: float
    ks_distance: float
    autocorrelation_diff: float
    spectral_distance: float

    def is_consistent(
        self,
        mean_tol_k: float = 1.0,
        std_ratio_tol: float = 0.2,
        ks_tol: float = 0.15,
    ) -> bool:
        """Loose pass/fail check used by tests and benchmark summaries."""
        return (
            abs(self.global_mean_diff_k) < mean_tol_k
            and abs(self.global_std_ratio - 1.0) < std_ratio_tol
            and self.ks_distance < ks_tol
        )

    def as_dict(self) -> dict:
        """Plain-dict view (for printing in the benchmark harness)."""
        return {
            "global_mean_diff_k": self.global_mean_diff_k,
            "global_std_ratio": self.global_std_ratio,
            "pointwise_mean_rmse_k": self.pointwise_mean_rmse_k,
            "pointwise_std_rmse_k": self.pointwise_std_rmse_k,
            "ks_distance": self.ks_distance,
            "autocorrelation_diff": self.autocorrelation_diff,
            "spectral_distance": self.spectral_distance,
        }


def consistency_report(
    simulations: ClimateEnsemble,
    emulations: ClimateEnsemble,
    lmax: int | None = None,
    max_lag: int = 3,
) -> ConsistencyReport:
    """Compare an emulated ensemble against the training simulations."""
    if simulations.grid.shape != emulations.grid.shape:
        raise ValueError("simulations and emulations must share a grid")
    grid = simulations.grid

    sim_stats = field_moments(simulations.data, grid)
    emu_stats = field_moments(emulations.data, grid)

    sim_fields = pointwise_moment_fields(simulations.data)
    emu_fields = pointwise_moment_fields(emulations.data)
    mean_rmse = float(np.sqrt(np.mean((sim_fields["mean"] - emu_fields["mean"]) ** 2)))
    std_rmse = float(np.sqrt(np.mean((sim_fields["std"] - emu_fields["std"]) ** 2)))

    ks = ks_distance(simulations.data, emulations.data)

    sim_acf = temporal_autocorrelation(simulations.data, max_lag=max_lag, grid=grid)
    emu_acf = temporal_autocorrelation(emulations.data, max_lag=max_lag, grid=grid)
    acf_diff = float(np.mean(np.abs(sim_acf - emu_acf)))

    if lmax is None:
        lmax = min(8, grid.max_bandlimit())
    sim_spec = spectrum_from_grid(simulations.data[0, -1] - sim_fields["mean"], lmax, grid)
    emu_spec = spectrum_from_grid(emulations.data[0, -1] - emu_fields["mean"], lmax, grid)
    spec_dist = spectral_distance(sim_spec[1:], emu_spec[1:])

    return ConsistencyReport(
        global_mean_diff_k=emu_stats["mean"] - sim_stats["mean"],
        global_std_ratio=emu_stats["std"] / sim_stats["std"] if sim_stats["std"] else 0.0,
        pointwise_mean_rmse_k=mean_rmse,
        pointwise_std_rmse_k=std_rmse,
        ks_distance=ks,
        autocorrelation_diff=acf_diff,
        spectral_distance=spec_dist,
    )
