"""Statistical-consistency diagnostics between simulations and emulations.

The paper's scientific claim is that the emulations are "statistically
consistent" with the simulations (Figures 2 and 4 and the companion JASA
paper).  This subpackage provides the quantitative diagnostics the
benchmarks and tests use to check that claim on the synthetic data:
per-location moments, area-weighted global statistics, quantiles,
temporal autocorrelation and angular power spectra.
"""

from repro.stats.moments import (
    field_moments,
    global_mean_series,
    pointwise_moment_fields,
    temporal_autocorrelation,
)
from repro.stats.consistency import ConsistencyReport, consistency_report
from repro.stats.distributions import quantile_table, ks_distance

__all__ = [
    "ConsistencyReport",
    "consistency_report",
    "field_moments",
    "global_mean_series",
    "ks_distance",
    "pointwise_moment_fields",
    "quantile_table",
    "temporal_autocorrelation",
]
