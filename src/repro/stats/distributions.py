"""Distributional diagnostics (quantiles and KS distances)."""

from __future__ import annotations

import numpy as np

__all__ = ["quantile_table", "ks_distance"]

DEFAULT_QUANTILES = (0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99)


def quantile_table(
    data: np.ndarray, quantiles: tuple[float, ...] = DEFAULT_QUANTILES
) -> dict[float, float]:
    """Selected quantiles of a flattened sample."""
    flat = np.asarray(data, dtype=np.float64).ravel()
    values = np.quantile(flat, quantiles)
    return {float(q): float(v) for q, v in zip(quantiles, values)}


def ks_distance(sample_a: np.ndarray, sample_b: np.ndarray, n_points: int = 512) -> float:
    """Two-sample Kolmogorov-Smirnov distance on an evaluation grid.

    Computed on a common grid of ``n_points`` evaluation points spanning the
    pooled range, which keeps the cost independent of the (potentially very
    large) sample sizes of gridded climate fields.
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64).ravel())
    b = np.sort(np.asarray(sample_b, dtype=np.float64).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("samples must be non-empty")
    lo = min(a[0], b[0])
    hi = max(a[-1], b[-1])
    grid = np.linspace(lo, hi, n_points)
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))
