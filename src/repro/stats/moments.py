"""Moment-based diagnostics of gridded ensembles."""

from __future__ import annotations

import numpy as np

from repro.sht.grid import Grid

__all__ = [
    "field_moments",
    "pointwise_moment_fields",
    "global_mean_series",
    "temporal_autocorrelation",
]


def field_moments(data: np.ndarray, grid: Grid | None = None) -> dict:
    """Area-weighted mean / std / min / max over all members and times.

    Parameters
    ----------
    data:
        Array of shape ``(R, T, ntheta, nphi)`` (or any leading shape ending
        in the grid axes).
    grid:
        Grid used for area weighting; plain unweighted statistics when
        omitted.
    """
    data = np.asarray(data, dtype=np.float64)
    if grid is not None:
        w = grid.area_weights()
        mean = float(np.tensordot(data, w, axes=([-2, -1], [0, 1])).mean())
        centred = data - mean
        var = float(
            np.tensordot(centred ** 2, w, axes=([-2, -1], [0, 1])).mean()
        )
        std = float(np.sqrt(var))
    else:
        mean = float(data.mean())
        std = float(data.std())
    return {
        "mean": mean,
        "std": std,
        "min": float(data.min()),
        "max": float(data.max()),
    }


def pointwise_moment_fields(data: np.ndarray) -> dict[str, np.ndarray]:
    """Per-location mean and standard deviation fields.

    ``data`` has shape ``(R, T, ntheta, nphi)``; the statistics pool members
    and time steps.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 3:
        data = data[None, ...]
    return {
        "mean": data.mean(axis=(0, 1)),
        "std": data.std(axis=(0, 1), ddof=1),
    }


def global_mean_series(data: np.ndarray, grid: Grid) -> np.ndarray:
    """Area-weighted global-mean time series, shape ``(R, T)``."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 3:
        data = data[None, ...]
    w = grid.area_weights()
    return np.tensordot(data, w, axes=([2, 3], [0, 1]))


def temporal_autocorrelation(data: np.ndarray, max_lag: int = 5, grid: Grid | None = None) -> np.ndarray:
    """Lagged autocorrelation of the (global-mean, detrended) series.

    Returns the autocorrelation at lags ``1 .. max_lag`` averaged over
    ensemble members.  The linear trend and mean are removed first so the
    statistic reflects internal variability rather than the forced signal.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 4:
        if grid is None:
            grid = Grid(ntheta=data.shape[-2], nphi=data.shape[-1])
        series = global_mean_series(data, grid)
    elif data.ndim == 2:
        series = data
    else:
        series = data[None, :]
    n_ens, n_times = series.shape
    out = np.zeros(max_lag)
    t = np.arange(n_times)
    for r in range(n_ens):
        y = series[r]
        coeffs = np.polyfit(t, y, 1)
        resid = y - np.polyval(coeffs, t)
        denom = float(np.sum(resid ** 2)) or 1.0
        for lag in range(1, max_lag + 1):
            out[lag - 1] += float(np.sum(resid[lag:] * resid[:-lag]) / denom)
    return out / n_ens
