"""Public API layer: artifacts, backend registries and the facade.

This subpackage hosts the three pillars of the emulator's public surface:

* :mod:`repro.api.registry` — the public spelling of the
  :class:`BackendRegistry` mechanism behind the named SHT and
  Cholesky-precision backends (implementation in the dependency-free
  :mod:`repro.util.registry`).
* :mod:`repro.api.artifact` — the versioned, NPZ-backed
  :class:`EmulatorArtifact` that persists a fitted emulator (the
  "parameters replace petabytes" story made durable).
* :mod:`repro.api.facade` — the top-level ``fit`` / ``save`` / ``load`` /
  ``emulate`` / ``emulate_stream`` convenience functions re-exported as
  ``repro.fit`` etc.

Every pipeline stage follows one serialisation protocol: ``state_dict()``
returns a nested dict of arrays and JSON-able metadata, and the classmethod
``from_state(state)`` rebuilds the fitted object bit-exactly.
"""

from __future__ import annotations

from repro.api.registry import BackendRegistry, BackendSpec, UnknownBackendError
from repro.api.artifact import (
    SCHEMA_VERSION,
    ArtifactError,
    EmulatorArtifact,
    SchemaVersionError,
)
from repro.api.facade import emulate, emulate_stream, fit, load, save

__all__ = [
    "ArtifactError",
    "BackendRegistry",
    "BackendSpec",
    "EmulatorArtifact",
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "UnknownBackendError",
    "emulate",
    "emulate_stream",
    "fit",
    "load",
    "save",
]
