"""Public alias of the backend-registry mechanism.

The implementation lives in :mod:`repro.util.registry`, a dependency-free
leaf module, so that the low-level packages registering backends
(:mod:`repro.sht.backends`, :mod:`repro.linalg.policies`) never import the
API layer.  This module is the public spelling of the same names.
"""

from __future__ import annotations

from repro.util.registry import BackendRegistry, BackendSpec, UnknownBackendError

__all__ = ["BackendRegistry", "BackendSpec", "UnknownBackendError"]
