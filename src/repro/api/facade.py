"""Top-level convenience API: ``repro.fit`` / ``save`` / ``load`` / ``emulate``.

The facade covers the fit-once / emulate-anywhere workflow in four calls:

>>> import repro                                      # doctest: +SKIP
>>> emulator = repro.fit(ensemble, lmax=16)           # doctest: +SKIP
>>> repro.save(emulator, "emulator.npz")              # doctest: +SKIP
>>> emulations = repro.emulate("emulator.npz", n_realizations=5)  # doctest: +SKIP
>>> for chunk in repro.emulate_stream("emulator.npz", n_times=8760):
...     write(chunk)                                  # doctest: +SKIP

Everything delegates to :class:`~repro.core.emulator.ClimateEmulator` and
:class:`~repro.api.artifact.EmulatorArtifact`; the class-based API remains
fully supported.
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.api.artifact import EmulatorArtifact
from repro.core.config import EmulatorConfig
from repro.core.emulator import ClimateEmulator
from repro.data.ensemble import ClimateEnsemble
from repro.obs import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.spec import ScenarioSpec
    from repro.serving.service import EmulationService
    from repro.storage.chunkstore import ChunkStore

__all__ = ["emulate", "emulate_stream", "fit", "load", "save", "serve"]


def fit(
    ensemble: ClimateEnsemble,
    config: EmulatorConfig | None = None,
    batch_size: int | None = None,
    **overrides,
) -> ClimateEmulator:
    """Fit a :class:`ClimateEmulator` on a simulation ensemble.

    Parameters
    ----------
    ensemble:
        The training ensemble; ``ensemble.data`` has shape
        ``(R, T, ntheta, nphi)`` and the grid must support the configured
        band-limit (``ntheta >= lmax + 1``, ``nphi >= 2*lmax - 1``).
    config:
        Emulator configuration; defaults to ``EmulatorConfig()``.
    batch_size:
        Cap on ensemble members per SHT pass during the spectral fit
        (all at once when ``None``).  A memory knob only: the fitted
        state is bit-identical for every value, because the forward and
        inverse transforms are independent per leading slice.
    **overrides:
        Individual :class:`EmulatorConfig` fields overriding ``config``
        (e.g. ``fit(ensemble, lmax=16, precision_variant="DP/SP")``).

    Returns
    -------
    ClimateEmulator
        The fitted emulator.  Fitting is deterministic: the same ensemble
        and configuration always produce bit-identical fitted state (no
        hidden randomness anywhere in the pipeline), and ``batch_size``
        never changes a bit of it.
    """
    if config is None:
        config = EmulatorConfig(**overrides)
    elif overrides:
        config = dataclasses.replace(config, **overrides)
    with span(
        "facade.fit",
        lmax=config.lmax,
        n_ensemble=ensemble.data.shape[0],
        n_times=ensemble.data.shape[1],
        bytes=ensemble.data.nbytes,
    ):
        return ClimateEmulator(config).fit(ensemble, batch_size=batch_size)


def save(emulator: ClimateEmulator, path: "str | os.PathLike") -> str:
    """Persist a fitted emulator as an NPZ artifact; returns the path.

    All fitted arrays are stored at full ``float64`` precision, so a
    :func:`load` round trip rebuilds a bit-exactly equivalent emulator.
    """
    with span("facade.save"):
        return emulator.save(path)


def load(path: "str | os.PathLike") -> ClimateEmulator:
    """Load a fitted emulator from an artifact written by :func:`save`.

    The loaded emulator emulates without the raw training ensemble and is
    bit-exactly equivalent to the emulator that was saved: under the same
    seeded generator both produce identical output.  Loading reuses the
    process-wide SHT plan cache (:func:`repro.sht.plancache.get_plan`),
    so repeated loads of artifacts sharing ``(sht_method, lmax, grid)``
    rebuild the transform tables only once per process.
    """
    with span("facade.load"):
        return EmulatorArtifact.load(path).to_emulator()


def _resolve(source) -> ClimateEmulator:
    if isinstance(source, ClimateEmulator):
        return source
    if isinstance(source, (str, os.PathLike)):
        return load(source)
    raise TypeError(
        f"expected a ClimateEmulator or an artifact path, got {type(source).__name__}"
    )


def emulate(
    source,
    n_realizations: int = 1,
    n_times: int | None = None,
    annual_forcing: "np.ndarray | str | ScenarioSpec | None" = None,
    rng: np.random.Generator | None = None,
    include_nugget: bool = True,
    batch_size: int | None = None,
) -> ClimateEnsemble:
    """Generate emulations from a fitted emulator or a saved artifact path.

    ``annual_forcing`` accepts a raw annual array, a registered scenario
    name (``"ssp-high"``; see :func:`repro.list_scenarios`) or a
    :class:`~repro.scenarios.spec.ScenarioSpec`.  Bare names resolve at
    the registry's default baseline (``start_level=2.5``); pass a spec
    built with ``repro.SCENARIOS.create(name, start_level=...)`` for a
    different baseline.  See :meth:`ClimateEmulator.emulate` for the
    remaining parameters.

    Returns
    -------
    ClimateEnsemble
        ``data`` is ``float64`` of shape
        ``(n_realizations, n_times, ntheta, nphi)``.  Output is a
        deterministic function of the fitted state and ``rng``: the same
        seeded generator reproduces it bit for bit, and ``batch_size``
        (the cap on realizations per inverse-SHT pass) never changes a
        bit — it only bounds the synthesis working set.
    """
    with span(
        "facade.emulate", n_realizations=n_realizations, n_times=n_times
    ) as sp:
        result = _resolve(source).emulate(
            n_realizations=n_realizations,
            n_times=n_times,
            annual_forcing=annual_forcing,
            rng=rng,
            include_nugget=include_nugget,
            batch_size=batch_size,
        )
        sp.set(bytes=result.data.nbytes, shape=result.data.shape)
    return result


def emulate_stream(
    source,
    n_realizations: int = 1,
    n_times: int | None = None,
    annual_forcing: "np.ndarray | str | ScenarioSpec | None" = None,
    rng: np.random.Generator | None = None,
    include_nugget: bool = True,
    chunk_size: int | None = None,
    batch_size: int | None = None,
) -> Iterator[ClimateEnsemble]:
    """Stream emulation chunks from a fitted emulator or artifact path.

    ``annual_forcing`` accepts a raw annual array, a registered scenario
    name or a :class:`~repro.scenarios.spec.ScenarioSpec`.  See
    :meth:`ClimateEmulator.emulate_stream` for the remaining parameters.

    Yields
    ------
    ClimateEnsemble
        Consecutive chunks with ``float64`` ``data`` of shape
        ``(n_realizations, <=chunk_size, ntheta, nphi)`` (one model year
        per chunk by default), VAR state carried across chunks.  The
        concatenated stream is a deterministic function of ``rng``:
        with ``chunk_size >= n_times`` the single chunk is bit-exact with
        :func:`emulate`, and ``batch_size`` never changes any output bit.
    """
    stream = _resolve(source).emulate_stream(
        n_realizations=n_realizations,
        n_times=n_times,
        annual_forcing=annual_forcing,
        rng=rng,
        include_nugget=include_nugget,
        chunk_size=chunk_size,
        batch_size=batch_size,
    )

    def _traced() -> Iterator[ClimateEnsemble]:
        # Each next() is timed as its own span, so a trace shows where
        # the stream's wall time went chunk by chunk; the generator
        # stays lazy and yields outside the span.
        iterator = iter(stream)
        index = 0
        while True:
            with span("facade.emulate_stream.chunk", chunk=index) as sp:
                try:
                    chunk = next(iterator)
                except StopIteration:
                    sp.set(exhausted=True)
                    return
                sp.set(bytes=chunk.data.nbytes)
            yield chunk
            index += 1

    return _traced()


def serve(
    source,
    *,
    seed: int = 0,
    # Mirrors repro.serving.service.DEFAULT_CACHE_BYTES (a literal here so
    # the default does not force an import of the serving layer; pinned
    # equal by tests).  None means unlimited, exactly as it does on
    # EmulationService.
    cache_bytes: "int | str | None" = 256 * 2**20,
    store: "ChunkStore | str | os.PathLike | None" = None,
    **kwargs,
) -> "EmulationService":
    """Build an on-demand :class:`EmulationService` over a fitted emulator.

    The service answers :class:`~repro.serving.request.FieldRequest`
    objects from a bytes-capped chunk cache, an optional persistent
    :class:`~repro.storage.chunkstore.ChunkStore`, or fresh synthesis —
    with single-flight locking and same-scenario request coalescing.
    Realization ``r`` draws from ``SeedSequence(seed, spawn_key=(r,))``,
    so every served field is a pure function of ``(artifact, seed,
    request)``; see :mod:`repro.serving.service` for the bit-exactness
    contract.

    Parameters
    ----------
    source:
        A fitted emulator or an artifact path.
    seed:
        Root entropy of the service.
    cache_bytes:
        In-memory chunk-cache budget in bytes (default 256 MiB;
        ``None`` for unlimited).  ``"auto"`` sizes the budget from the
        host's measured :class:`~repro.tuning.MachineProfile` and the
        artifact's chunk size (:func:`repro.tuning.
        plan_serving_cache_bytes`) — a pure capacity knob, so served
        bytes are identical for every setting.
    store:
        A :class:`~repro.storage.chunkstore.ChunkStore`, or a directory
        path (opened as a lossless float64 store).
    **kwargs:
        Remaining :class:`~repro.serving.service.EmulationService`
        options (``stream_horizon_years``, ``max_streams``).
    """
    # Imported lazily: the serving layer sits above the facade.
    from repro.serving.service import EmulationService
    from repro.storage.chunkstore import ChunkStore

    if store is not None and not isinstance(store, ChunkStore):
        store = ChunkStore(store)
    if cache_bytes == "auto":
        # Size the cache from the measured machine profile (cached under
        # the store root when there is one) and this artifact's year-
        # chunk footprint.  The source is resolved once here and the
        # resolved emulator handed on, so "auto" costs no second load.
        from repro.obs import gauge_set
        from repro.tuning import load_or_calibrate, plan_serving_cache_bytes

        source = _resolve(source)
        summary = source.training_summary
        chunk_bytes = (
            summary.grid.ntheta * summary.grid.nphi * summary.steps_per_year * 8
        )
        profile = load_or_calibrate(None if store is None else store.root)
        cache_bytes = plan_serving_cache_bytes(profile, chunk_bytes)
        gauge_set("tuning.serve.cache_bytes", float(cache_bytes))
    with span("facade.serve", seed=seed):
        return EmulationService(
            source,
            seed=seed,
            cache_bytes=cache_bytes,
            store=store,
            **kwargs,
        )
