"""Versioned, NPZ-backed persistence of fitted emulators.

The paper's headline claim is that a fitted emulator's *parameters* replace
petabytes of raw ensemble output.  :class:`EmulatorArtifact` makes that
durable: it captures :meth:`ClimateEmulator.state_dict` — every fitted
pipeline stage (trend, scale, VAR, innovation covariance, mixed-precision
Cholesky factor, nugget) plus the training summary and configuration — in a
single compressed ``.npz`` file with a JSON metadata block and an explicit
schema version.

Round trips are bit-exact: a loaded emulator driven by the same seeded
random generator reproduces the original's ``emulate()`` output exactly.
The serialised size is also *measurable* (:meth:`EmulatorArtifact.nbytes`),
which is what ``ClimateEmulator.storage_summary`` and
:func:`repro.storage.accounting.measured_artifact_report` quote next to the
theoretical parameter counts.

File layout
-----------
One NPZ member per array, named by its ``/``-joined path in the nested
state dict (e.g. ``spectral_model/cholesky/lower``); one ``uint8`` member
(:data:`META_KEY`) holding the UTF-8 JSON metadata: schema version, library
version, and the non-array part of the state tree.  ``allow_pickle`` is
never used, so artifacts are safe to load from untrusted sources.
"""

from __future__ import annotations

import io
import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core.emulator import ClimateEmulator

__all__ = [
    "ArtifactError",
    "EmulatorArtifact",
    "META_KEY",
    "SCHEMA_VERSION",
    "SchemaVersionError",
]

#: Current artifact schema version; bumped on incompatible layout changes.
SCHEMA_VERSION = 1

#: NPZ member holding the JSON metadata block.
META_KEY = "__repro_artifact__"

#: Identifies the file format inside the metadata block.
FORMAT_NAME = "repro-emulator-artifact"


class ArtifactError(ValueError):
    """The file is not a readable emulator artifact."""


class SchemaVersionError(ArtifactError):
    """The artifact was written under an incompatible schema version."""


def _jsonable(value):
    """Convert numpy scalars / containers to plain JSON-able Python values."""
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return value


@dataclass
class EmulatorArtifact:
    """A serialisable snapshot of a fitted :class:`ClimateEmulator`.

    Parameters
    ----------
    state:
        Nested state dict as produced by ``ClimateEmulator.state_dict()``
        (arrays and JSON-able metadata).
    schema_version:
        Layout version written to / read from disk.
    source_version:
        ``repro`` library version that produced the state.
    """

    state: dict
    schema_version: int = SCHEMA_VERSION
    source_version: str = field(default=__version__)

    # ------------------------------------------------------------------ #
    # Emulator round trip
    # ------------------------------------------------------------------ #
    @classmethod
    def from_emulator(cls, emulator: ClimateEmulator) -> "EmulatorArtifact":
        """Snapshot a fitted emulator."""
        return cls(state=emulator.state_dict())

    def to_emulator(self) -> ClimateEmulator:
        """Rebuild the fitted emulator this artifact snapshots."""
        return ClimateEmulator.from_state(self.state)

    # ------------------------------------------------------------------ #
    # Flattening
    # ------------------------------------------------------------------ #
    def _flatten(self) -> tuple[dict[str, np.ndarray], dict]:
        """Split the nested state into NPZ arrays and a JSON metadata tree."""
        arrays: dict[str, np.ndarray] = {}

        def walk(node: dict, prefix: str) -> dict:
            meta: dict = {}
            for key, value in node.items():
                key = str(key)
                if "/" in key:
                    raise ArtifactError(f"state key {key!r} may not contain '/'")
                path = f"{prefix}{key}"
                if isinstance(value, np.ndarray):
                    arrays[path] = value
                elif isinstance(value, dict):
                    meta[key] = walk(value, f"{path}/")
                else:
                    meta[key] = _jsonable(value)
            return meta

        meta_tree = walk(self.state, "")
        return arrays, meta_tree

    @staticmethod
    def _unflatten(arrays: dict[str, np.ndarray], meta_tree: dict) -> dict:
        """Merge NPZ arrays back into the metadata tree."""
        state = json.loads(json.dumps(meta_tree))  # deep copy, plain types
        for path, array in arrays.items():
            parts = path.split("/")
            node = state
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = array
        return state

    # ------------------------------------------------------------------ #
    # I/O
    # ------------------------------------------------------------------ #
    def _write(self, fh) -> None:
        arrays, meta_tree = self._flatten()
        meta = {
            "format": FORMAT_NAME,
            "schema_version": int(self.schema_version),
            "source_version": str(self.source_version),
            "state": meta_tree,
        }
        payload = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(fh, **arrays, **{META_KEY: payload})

    def save(self, path: "str | os.PathLike") -> str:
        """Write the artifact to ``path`` (exact path, no ``.npz`` appended)."""
        path = Path(path)
        with open(path, "wb") as fh:
            self._write(fh)
        return str(path)

    def tobytes(self) -> bytes:
        """The serialised artifact as an in-memory byte string."""
        buffer = io.BytesIO()
        self._write(buffer)
        return buffer.getvalue()

    def nbytes(self) -> int:
        """Measured size in bytes of the serialised artifact."""
        return len(self.tobytes())

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "EmulatorArtifact":
        """Read an artifact written by :meth:`save`.

        Raises
        ------
        ArtifactError
            When the file is not an emulator artifact.
        SchemaVersionError
            When the artifact's schema version differs from
            :data:`SCHEMA_VERSION`.
        """
        path = Path(path)
        # Open the file ourselves: np.load(path) can leak its file handle
        # when the zip directory is corrupt (it opens the file before the
        # NpzFile takes ownership), and the handle is ours to close either way.
        try:
            handle = open(path, "rb")
        except OSError as exc:
            raise ArtifactError(f"cannot read {path} as an NPZ artifact: {exc}") from exc
        with handle:
            try:
                archive = np.load(handle, allow_pickle=False)
            except (OSError, ValueError, zipfile.BadZipFile) as exc:
                raise ArtifactError(
                    f"cannot read {path} as an NPZ artifact: {exc}"
                ) from exc
            if not isinstance(archive, np.lib.npyio.NpzFile):
                # np.load returns a bare array for .npy files without raising.
                raise ArtifactError(
                    f"{path} is a plain array file, not a {FORMAT_NAME} archive"
                )
            if META_KEY not in archive.files:
                raise ArtifactError(
                    f"{path} is an NPZ file but not a {FORMAT_NAME} "
                    f"(missing the {META_KEY!r} metadata member)"
                )
            meta = json.loads(bytes(np.asarray(archive[META_KEY])).decode("utf-8"))
            if meta.get("format") != FORMAT_NAME:
                raise ArtifactError(
                    f"{path} declares format {meta.get('format')!r}, "
                    f"expected {FORMAT_NAME!r}"
                )
            version = int(meta.get("schema_version", -1))
            if version != SCHEMA_VERSION:
                raise SchemaVersionError(
                    f"{path} uses artifact schema version {version}, but this "
                    f"build reads version {SCHEMA_VERSION}; re-save the emulator "
                    f"with a matching repro version"
                )
            arrays = {
                key: np.asarray(archive[key])
                for key in archive.files
                if key != META_KEY
            }
        state = cls._unflatten(arrays, meta.get("state", {}))
        return cls(
            state=state,
            schema_version=version,
            source_version=str(meta.get("source_version", "unknown")),
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Sizes and identity of the artifact (reporting helper)."""
        arrays, _ = self._flatten()
        return {
            "schema_version": int(self.schema_version),
            "source_version": str(self.source_version),
            "n_arrays": len(arrays),
            "array_values": int(sum(a.size for a in arrays.values())),
            "nbytes": self.nbytes(),
            "config": _jsonable(self.state.get("config", {})),
        }
