"""Dependency analysis of task lists.

PaRSEC derives the task graph from a symbolic, parametrised representation;
here we derive it from the declared data accesses of an ordered task list
using last-writer / reader tracking, which yields the same DAG for the
dense-linear-algebra workloads this package generates (true dependencies
plus write-after-read and write-after-write ordering).

The resulting :class:`TaskGraph` wraps a :class:`networkx.DiGraph` and
provides the analyses the benchmarks and the tuning cost model need:
topological order, critical path under a cost model, width (parallelism)
profile, and per-kind/per-precision flop accounting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import networkx as nx

from repro.runtime.task import Task, TileRef

__all__ = ["TaskGraph", "build_task_graph"]


@dataclass
class TaskGraph:
    """A task DAG together with the originating task list."""

    tasks: list[Task]
    graph: nx.DiGraph

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_tasks(self) -> int:
        """Number of tasks in the graph."""
        return len(self.tasks)

    @property
    def n_edges(self) -> int:
        """Number of dependency edges."""
        return self.graph.number_of_edges()

    def total_flops(self) -> float:
        """Sum of task flop counts."""
        return float(sum(t.flops for t in self.tasks))

    def flops_by_kind(self) -> dict[str, float]:
        """Flop totals grouped by kernel kind."""
        out: dict[str, float] = defaultdict(float)
        for t in self.tasks:
            out[t.kind] += t.flops
        return dict(out)

    def flops_by_precision(self) -> dict[str, float]:
        """Flop totals grouped by compute precision."""
        out: dict[str, float] = defaultdict(float)
        for t in self.tasks:
            out[t.precision] += t.flops
        return dict(out)

    def counts_by_kind(self) -> dict[str, int]:
        """Task counts grouped by kernel kind."""
        out: dict[str, int] = defaultdict(int)
        for t in self.tasks:
            out[t.kind] += 1
        return dict(out)

    # ------------------------------------------------------------------ #
    # Orderings and structure
    # ------------------------------------------------------------------ #
    def topological_order(self) -> list[Task]:
        """Tasks in a valid execution order."""
        index = {t.name: t for t in self.tasks}
        return [index[name] for name in nx.topological_sort(self.graph)]

    def predecessors(self, task: Task) -> list[Task]:
        """Direct predecessors of ``task``."""
        index = {t.name: t for t in self.tasks}
        return [index[n] for n in self.graph.predecessors(task.name)]

    def successors(self, task: Task) -> list[Task]:
        """Direct successors of ``task``."""
        index = {t.name: t for t in self.tasks}
        return [index[n] for n in self.graph.successors(task.name)]

    def critical_path(
        self, cost: Callable[[Task], float] | None = None
    ) -> tuple[float, list[str]]:
        """Critical-path length and the task names along it.

        Parameters
        ----------
        cost:
            Maps a task to its execution cost; defaults to the flop count,
            so the result is the minimum achievable "weighted span".
        """
        if cost is None:
            cost = lambda t: t.flops  # noqa: E731
        index = {t.name: t for t in self.tasks}
        dist: dict[str, float] = {}
        parent: dict[str, str | None] = {}
        for name in nx.topological_sort(self.graph):
            c = cost(index[name])
            best, best_p = 0.0, None
            for pred in self.graph.predecessors(name):
                if dist[pred] > best:
                    best, best_p = dist[pred], pred
            dist[name] = best + c
            parent[name] = best_p
        if not dist:
            return 0.0, []
        end = max(dist, key=dist.get)
        path = [end]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        return dist[end], list(reversed(path))

    def parallelism_profile(self) -> list[int]:
        """Number of tasks at each dependency level (the DAG's width profile)."""
        level: dict[str, int] = {}
        for name in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(name))
            level[name] = 0 if not preds else 1 + max(level[p] for p in preds)
        widths: dict[int, int] = defaultdict(int)
        for lv in level.values():
            widths[lv] += 1
        return [widths[i] for i in range(len(widths))]

    def max_parallelism(self) -> int:
        """Maximum width of the DAG."""
        profile = self.parallelism_profile()
        return max(profile) if profile else 0

    def average_parallelism(self, cost: Callable[[Task], float] | None = None) -> float:
        """Total work divided by the critical path (ideal speedup bound)."""
        if cost is None:
            cost = lambda t: t.flops  # noqa: E731
        span, _ = self.critical_path(cost)
        total = sum(cost(t) for t in self.tasks)
        return total / span if span > 0 else 0.0


def build_task_graph(tasks: Sequence[Task] | Iterable[Task]) -> TaskGraph:
    """Build the dependency DAG from an ordered task list.

    Dependencies are derived from data accesses in program order:

    * read-after-write: a task reading a tile depends on its last writer;
    * write-after-write: a task writing a tile depends on its last writer;
    * write-after-read: a task writing a tile depends on all readers since
      the last write (ensures in-place updates do not overtake reads).
    """
    tasks = list(tasks)
    names = set()
    for t in tasks:
        if t.name in names:
            raise ValueError(f"duplicate task name {t.name!r}")
        names.add(t.name)

    graph = nx.DiGraph()
    for t in tasks:
        graph.add_node(t.name)

    last_writer: dict[TileRef, str] = {}
    readers_since_write: dict[TileRef, list[str]] = defaultdict(list)

    for t in tasks:
        deps: set[str] = set()
        for ref in t.reads:
            if ref in last_writer:
                deps.add(last_writer[ref])
        for ref in t.writes:
            if ref in last_writer:
                deps.add(last_writer[ref])
            deps.update(readers_since_write.get(ref, ()))
        deps.discard(t.name)
        for d in deps:
            graph.add_edge(d, t.name)
        for ref in t.reads:
            readers_since_write[ref].append(t.name)
        for ref in t.writes:
            last_writer[ref] = t.name
            readers_since_write[ref] = []
    return TaskGraph(tasks=tasks, graph=graph)
