"""Machine models: GPUs, nodes, full systems, and communication policies.

The performance studies in the paper run on four systems (Frontier, Alps,
Leonardo, Summit) whose relevant attributes are the per-GPU peak rates at
double, single and half precision, the GPU memory capacity, the number of
GPUs per node, and the interconnect bandwidth/latency.  This module defines
the dataclasses consumed by the analytic performance model
(:mod:`repro.systems.perf_model`) and the two communication policy enums
the paper's Sections III-C and V-A turn on; the concrete catalogue of the
four systems lives in :mod:`repro.systems.catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "CollectivePriority",
    "ConversionSide",
    "GPUSpec",
    "MachineSpec",
    "NodeSpec",
]


class CollectivePriority(str, Enum):
    """Collective-communication scheduling policy (Section III-C).

    PaRSEC originally maximised aggregate bandwidth by letting many
    collectives progress concurrently, which at scale produced
    starvation; the fix prioritised the latency of individual
    collectives.  ``BANDWIDTH`` models the original mode (start-up
    latency inflated by contention), ``LATENCY`` the improved one.
    """

    BANDWIDTH = "bandwidth"
    LATENCY = "latency"


class ConversionSide(str, Enum):
    """Where a precision conversion of a communicated tile happens.

    When a tile is produced at one precision and consumed at a lower
    one, converting at the sender shrinks the message (and performs the
    conversion once), whereas converting at the receiver ships the
    full-precision tile and repeats the conversion per consumer
    (Section V-A).
    """

    SENDER = "sender"
    RECEIVER = "receiver"


@dataclass(frozen=True)
class GPUSpec:
    """A GPU (or GPU die) as seen by the solver.

    Rates are peak arithmetic throughput in GFlop/s for dense kernels at
    each storage precision; ``memory_gb`` is usable device memory.  The
    ``kernel_efficiency`` factor is the fraction of peak a well-tuned tile
    kernel (large GEMM) achieves, which the analytic model uses as the
    per-kernel roofline.
    """

    name: str
    fp64_gflops: float
    fp32_gflops: float
    fp16_gflops: float
    memory_gb: float
    kernel_efficiency: float = 0.85

    def rate(self, precision: str) -> float:
        """Peak GFlop/s for a named precision (``fp64``/``fp32``/``fp16``)."""
        try:
            return {
                "fp64": self.fp64_gflops,
                "fp32": self.fp32_gflops,
                "fp16": self.fp16_gflops,
            }[precision]
        except KeyError as exc:  # pragma: no cover - defensive
            raise ValueError(f"unknown precision {precision!r}") from exc

    def effective_rate(self, precision: str) -> float:
        """Sustained GFlop/s for tile kernels at a named precision."""
        return self.rate(precision) * self.kernel_efficiency


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: a set of identical GPUs plus injection bandwidth."""

    name: str
    gpu: GPUSpec
    gpus_per_node: int
    injection_bandwidth_gbs: float
    intra_node_bandwidth_gbs: float = 200.0
    host_memory_gb: float = 512.0

    @property
    def fp64_gflops(self) -> float:
        """Aggregate double-precision peak of the node."""
        return self.gpu.fp64_gflops * self.gpus_per_node

    @property
    def gpu_memory_gb(self) -> float:
        """Aggregate GPU memory of the node."""
        return self.gpu.memory_gb * self.gpus_per_node


@dataclass(frozen=True)
class MachineSpec:
    """A full system: homogeneous nodes plus a network model."""

    name: str
    node: NodeSpec
    total_nodes: int
    network_latency_us: float = 5.0
    network_bandwidth_gbs: float = 25.0
    topology: str = "fat-tree"
    top500_rank: int | None = None
    peak_pflops_fp64: float | None = None

    def subset(self, nodes: int) -> "MachineSpec":
        """A copy of the machine restricted to ``nodes`` nodes (an allocation)."""
        if nodes < 1 or nodes > self.total_nodes:
            raise ValueError(
                f"requested {nodes} nodes but {self.name} has {self.total_nodes}"
            )
        return MachineSpec(
            name=self.name,
            node=self.node,
            total_nodes=nodes,
            network_latency_us=self.network_latency_us,
            network_bandwidth_gbs=self.network_bandwidth_gbs,
            topology=self.topology,
            top500_rank=self.top500_rank,
            peak_pflops_fp64=self.peak_pflops_fp64,
        )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_gpus(self) -> int:
        """Total GPU count of the allocation."""
        return self.total_nodes * self.node.gpus_per_node

    def aggregate_rate(self, precision: str, sustained: bool = True) -> float:
        """Aggregate GFlop/s at a precision across the allocation."""
        per_gpu = (
            self.node.gpu.effective_rate(precision)
            if sustained
            else self.node.gpu.rate(precision)
        )
        return per_gpu * self.total_gpus

    def theoretical_peak_pflops(self, precision: str = "fp64") -> float:
        """Theoretical peak in PFlop/s at a precision."""
        return self.aggregate_rate(precision, sustained=False) / 1.0e6

    def total_gpu_memory_gb(self) -> float:
        """Aggregate GPU memory of the allocation in GB."""
        return self.node.gpu_memory_gb * self.total_nodes

    def max_matrix_size(self, bytes_per_element: float = 8.0, fill_fraction: float = 0.85) -> int:
        """Largest square matrix order that fits in aggregate GPU memory.

        The paper sizes its largest runs by "maxing out the device memory";
        ``fill_fraction`` accounts for runtime buffers (PaRSEC internal
        memory) and workspace.
        """
        usable = self.total_gpu_memory_gb() * 1.0e9 * fill_fraction
        return int((usable / bytes_per_element) ** 0.5)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MachineSpec({self.name}, nodes={self.total_nodes}, "
            f"gpus={self.total_gpus}, gpu={self.node.gpu.name})"
        )
