"""Task descriptions for the tile-based runtime.

A :class:`Task` is the unit of work handled by the runtime, mirroring the
task abstraction of PaRSEC: it names the tiles it reads and writes, carries
the arithmetic cost and compute precision used by the cost models, and
(optionally) a kernel callable that the local executor applies to a tile
store to perform the real computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

__all__ = ["Task"]

# A tile reference is an arbitrary hashable key; tiled matrices use
# ("A", i, j) style tuples so several operands can coexist in one store.
TileRef = tuple


@dataclass
class Task:
    """A single runtime task.

    Parameters
    ----------
    name:
        Unique human-readable identifier, e.g. ``"POTRF(3,3)"``.
    kind:
        Kernel family (``POTRF``, ``TRSM``, ``SYRK``, ``GEMM``, or any other
        label for non-factorisation workloads).
    reads:
        Tile references read by the task (excluding the written tile unless
        it is also read, as in an update).
    writes:
        Tile references written by the task.
    flops:
        Floating-point operation count of the kernel.
    precision:
        Name of the compute precision (``"fp64"``, ``"fp32"``, ``"fp16"``)
        used for performance modelling.
    func:
        Optional callable ``func(store)`` executing the kernel against a
        mapping from tile references to ``numpy`` arrays.
    comm_bytes:
        Bytes received from remote tiles when the owner-computes mapping
        places the inputs on other processes (filled by the task generator;
        priced by the analytic communication terms of the cost models).
    priority:
        Larger values are scheduled earlier by priority-aware executors
        (the Cholesky generator gives panel tasks higher priority, which is
        the standard lookahead heuristic).
    metadata:
        Free-form annotations (e.g. conversion counts for the sender- versus
        receiver-side precision conversion study).
    """

    name: str
    kind: str
    reads: tuple[TileRef, ...]
    writes: tuple[TileRef, ...]
    flops: float
    precision: str = "fp64"
    func: Callable[[Mapping[TileRef, np.ndarray]], None] | None = None
    comm_bytes: float = 0.0
    priority: int = 0
    metadata: dict = field(default_factory=dict)

    def execute(self, store: Mapping[TileRef, np.ndarray]) -> None:
        """Run the kernel against ``store`` (no-op if no kernel attached)."""
        if self.func is not None:
            self.func(store)

    @property
    def accesses(self) -> tuple[TileRef, ...]:
        """All tiles touched by the task (reads then writes)."""
        return tuple(self.reads) + tuple(self.writes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Task({self.name}, kind={self.kind}, flops={self.flops:.3g}, "
            f"precision={self.precision})"
        )
