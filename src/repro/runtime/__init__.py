"""PaRSEC-like dynamic task runtime (simulated distributed execution).

The paper's solver is expressed as a DAG of tile tasks (POTRF / TRSM /
SYRK / GEMM) executed by the PaRSEC runtime over thousands of GPUs.  This
subpackage reproduces that machinery at the level needed to study the same
questions in Python:

* :mod:`repro.runtime.task` — task descriptions (reads/writes, flops,
  compute precision, communication payloads).
* :mod:`repro.runtime.dag` — dependency analysis: build the task graph from
  data accesses, critical path, parallelism profile.
* :mod:`repro.runtime.executor` — a *local numerical executor* that runs the
  task kernels for real (sequentially, respecting dependencies) against a
  tile store; this is what actually factorises matrices in this package.
* :mod:`repro.runtime.machine` — descriptions of GPUs, nodes and machines
  (per-precision peak rates, memory, interconnect).
* :mod:`repro.runtime.communication` — point-to-point and collective
  (broadcast-tree) cost models, including the bandwidth-first versus
  latency-first collective priority discussed in Section III-C.
* :mod:`repro.runtime.scheduler` — list schedulers mapping ready tasks onto
  workers (priority- and locality-aware).
* :mod:`repro.runtime.simulator` — a discrete-event simulator that replays a
  task DAG on a machine model and reports makespan, achieved flop rate,
  communication volume and memory high-water marks.
* :mod:`repro.runtime.memory` — per-process memory accounting for
  heterogeneous (mixed-precision) tiles, mirroring PaRSEC's dynamic
  allocation support.
"""

from repro.runtime.task import Task, TileRef
from repro.runtime.dag import TaskGraph, build_task_graph
from repro.runtime.executor import LocalExecutor, TileStore
from repro.runtime.machine import GPUSpec, NodeSpec, MachineSpec
from repro.runtime.communication import CommunicationModel, CollectivePriority
from repro.runtime.scheduler import ListScheduler, SchedulePolicy
from repro.runtime.simulator import DistributedSimulator, SimulationReport
from repro.runtime.memory import MemoryTracker

__all__ = [
    "CollectivePriority",
    "CommunicationModel",
    "DistributedSimulator",
    "GPUSpec",
    "ListScheduler",
    "LocalExecutor",
    "MachineSpec",
    "MemoryTracker",
    "NodeSpec",
    "SchedulePolicy",
    "SimulationReport",
    "Task",
    "TaskGraph",
    "TileRef",
    "TileStore",
    "build_task_graph",
]
