"""Task-graph substrate for the solver and the tuning layer.

The paper's solver is expressed as a DAG of tile tasks (POTRF / TRSM /
SYRK / GEMM) executed by the PaRSEC runtime over thousands of GPUs.  This
subpackage keeps the pieces of that machinery the rest of the package
actually runs on:

* :mod:`repro.runtime.task` — task descriptions (reads/writes, flops,
  compute precision, communication payloads).
* :mod:`repro.runtime.dag` — dependency analysis: build the task graph from
  data accesses, critical path, parallelism profile.  The campaign cost
  model (:mod:`repro.tuning.costmodel`) plans worker counts against these
  profiles.
* :mod:`repro.runtime.executor` — a *local numerical executor* that runs the
  task kernels for real (sequentially, respecting dependencies) against a
  tile store; this is what actually factorises matrices in this package.
* :mod:`repro.runtime.machine` — descriptions of GPUs, nodes and machines
  (per-precision peak rates, memory, interconnect) plus the collective-
  priority and conversion-side policy enums of Sections III-C and V-A.

The discrete-event scheduler/simulator layer that once lived here
(``ListScheduler``, ``DistributedSimulator``, ``CommunicationModel``,
``MemoryTracker``) was reachable only from its own tests and was folded
per ROADMAP item 5: the analytic cost model in
:mod:`repro.systems.perf_model` and the measured autotuner in
:mod:`repro.tuning` cover the questions it answered.
"""

from repro.runtime.task import Task
from repro.runtime.dag import TaskGraph, build_task_graph
from repro.runtime.executor import LocalExecutor, TileStore
from repro.runtime.machine import (
    CollectivePriority,
    ConversionSide,
    GPUSpec,
    MachineSpec,
    NodeSpec,
)

__all__ = [
    "CollectivePriority",
    "ConversionSide",
    "GPUSpec",
    "LocalExecutor",
    "MachineSpec",
    "NodeSpec",
    "Task",
    "TaskGraph",
    "TileStore",
    "build_task_graph",
]
