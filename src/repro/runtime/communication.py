"""Communication cost models for the distributed runtime.

Two aspects of the paper's runtime work are captured here:

* **Point-to-point and collective costs.**  Tile transfers are modelled
  with the classical ``alpha + beta * bytes`` model; broadcasts (POTRF
  panel to its TRSMs, TRSM results to their GEMM/SYRK rows and columns) use
  a binomial tree over the participating processes.

* **Collective priority.**  Section III-C explains that PaRSEC originally
  maximised aggregate bandwidth by letting many collectives progress
  concurrently, which at scale produced starvation; the fix prioritised the
  latency of individual collectives.  :class:`CollectivePriority` exposes
  the two modes: ``BANDWIDTH`` inflates the effective latency of every
  collective by a contention factor that grows with the number of
  concurrent collectives, while ``LATENCY`` serialises the start-up cost but
  keeps each collective's latency minimal.  The strong-scaling benchmarks
  show the crossover that motivated the change.

* **Sender- versus receiver-side precision conversion.**  When a tile is
  produced at one precision and consumed at a lower one, converting at the
  sender shrinks the message (and performs the conversion once), whereas
  converting at the receiver ships the full-precision tile and repeats the
  conversion per consumer (Section V-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.runtime.machine import MachineSpec

__all__ = ["CollectivePriority", "ConversionSide", "CommunicationModel"]


class CollectivePriority(str, Enum):
    """Collective-communication scheduling policy (Section III-C)."""

    BANDWIDTH = "bandwidth"
    LATENCY = "latency"


class ConversionSide(str, Enum):
    """Where a precision conversion of a communicated tile happens."""

    SENDER = "sender"
    RECEIVER = "receiver"


@dataclass
class CommunicationModel:
    """Alpha-beta communication model with collective trees.

    Parameters
    ----------
    machine:
        Machine providing latency (``alpha``) and per-link bandwidth
        (``beta``).
    collective_priority:
        Bandwidth-first or latency-first collective handling.
    concurrent_collectives:
        Estimate of how many collectives are in flight simultaneously; only
        relevant in ``BANDWIDTH`` mode, where it inflates per-collective
        latency (the starvation effect the paper observed at scale).
    """

    machine: MachineSpec
    collective_priority: CollectivePriority = CollectivePriority.LATENCY
    concurrent_collectives: int = 8

    # ------------------------------------------------------------------ #
    # Elementary costs
    # ------------------------------------------------------------------ #
    @property
    def latency_s(self) -> float:
        """Per-message latency in seconds."""
        return self.machine.network_latency_us * 1.0e-6

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Per-link bandwidth in bytes/second."""
        return self.machine.network_bandwidth_gbs * 1.0e9

    def point_to_point(self, nbytes: float) -> float:
        """Time to ship ``nbytes`` between two processes."""
        if nbytes <= 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def intra_node(self, nbytes: float) -> float:
        """Time to ship ``nbytes`` between GPUs of the same node."""
        if nbytes <= 0:
            return 0.0
        bw = self.machine.node.intra_node_bandwidth_gbs * 1.0e9
        return 1.0e-6 + nbytes / bw

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    def broadcast(self, nbytes: float, participants: int) -> float:
        """Time for a binomial-tree broadcast to ``participants`` processes.

        In ``LATENCY`` mode the cost is the classical
        ``ceil(log2(p)) * (alpha + bytes/bw)``.  In ``BANDWIDTH`` mode the
        same tree is used but each stage's latency is multiplied by the
        contention factor coming from the other collectives sharing the
        network, modelling the "maximise overall bandwidth" behaviour whose
        individual-collective latency the paper found to be sub-optimal at
        scale.
        """
        if participants <= 1 or nbytes <= 0:
            return 0.0
        stages = math.ceil(math.log2(participants))
        alpha = self.latency_s
        if self.collective_priority is CollectivePriority.BANDWIDTH:
            alpha = alpha * (1.0 + 0.5 * max(0, self.concurrent_collectives - 1))
        return stages * (alpha + nbytes / self.bandwidth_bytes_per_s)

    def reduce(self, nbytes: float, participants: int) -> float:
        """Reduction cost (same tree shape as the broadcast)."""
        return self.broadcast(nbytes, participants)

    # ------------------------------------------------------------------ #
    # Precision conversion
    # ------------------------------------------------------------------ #
    def converted_transfer(
        self,
        nbytes_source: float,
        nbytes_target: float,
        consumers: int,
        side: ConversionSide = ConversionSide.SENDER,
        conversion_rate_bytes_per_s: float = 200.0e9,
    ) -> tuple[float, int]:
        """Cost of sending a tile that must change precision in transit.

        Returns ``(time_seconds, conversions_performed)``.

        With sender-side conversion the tile is converted once and the
        smaller representation is broadcast; with receiver-side conversion
        the larger representation is broadcast and every consumer converts
        its own copy (Section V-A: "send-based conversion ... reduces
        repeated conversions across successive GEMMs").
        """
        if consumers < 1:
            return 0.0, 0
        if side is ConversionSide.SENDER:
            convert = nbytes_source / conversion_rate_bytes_per_s
            return convert + self.broadcast(nbytes_target, consumers + 1), 1
        convert = nbytes_target / conversion_rate_bytes_per_s
        return self.broadcast(nbytes_source, consumers + 1) + convert, consumers
