"""Task-to-worker scheduling policies.

Dynamic runtimes differ from bulk-synchronous execution mainly through
their scheduling freedom: ready tasks are mapped onto workers according to
priorities and data locality instead of a fixed owner order.  The
:class:`ListScheduler` implements the three policies the simulator and the
ablation benchmarks exercise:

``OWNER``
    Owner-computes: a task runs on the process that owns the tile it
    writes (the classical distributed dense-linear-algebra mapping, and the
    PaRSEC default for these kernels).

``LOCALITY``
    Run the task on the worker that already holds the most input bytes,
    breaking ties by earliest availability (reduces communication).

``EARLIEST``
    Run the task wherever it can start first, ignoring data placement
    (maximises load balance, maximises traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Mapping, Sequence

from repro.runtime.task import Task, TileRef

__all__ = ["SchedulePolicy", "ListScheduler"]


class SchedulePolicy(str, Enum):
    """Worker-selection policy used by :class:`ListScheduler`."""

    OWNER = "owner"
    LOCALITY = "locality"
    EARLIEST = "earliest"


@dataclass
class ListScheduler:
    """Select a worker for each ready task.

    Parameters
    ----------
    policy:
        One of :class:`SchedulePolicy`.
    owner_of:
        Callable mapping a tile reference to the worker that owns it; needed
        by ``OWNER`` and ``LOCALITY``.
    tile_bytes:
        Callable returning the size of a tile, used by ``LOCALITY`` to
        weight the inputs; defaults to counting tiles.
    """

    policy: SchedulePolicy = SchedulePolicy.OWNER
    owner_of: Callable[[TileRef], int] | None = None
    tile_bytes: Callable[[TileRef], float] | None = None

    def select_worker(
        self,
        task: Task,
        worker_available: Sequence[float],
    ) -> int:
        """Choose the worker index for ``task``.

        ``worker_available`` gives, per worker, the earliest time at which
        it is free; policies that do not care about timing ignore it.
        """
        n_workers = len(worker_available)
        if n_workers < 1:
            raise ValueError("at least one worker is required")

        if self.policy is SchedulePolicy.EARLIEST or self.owner_of is None:
            return int(min(range(n_workers), key=lambda w: worker_available[w]))

        if self.policy is SchedulePolicy.OWNER:
            target = task.writes[0] if task.writes else (task.reads[0] if task.reads else None)
            if target is None:
                return int(min(range(n_workers), key=lambda w: worker_available[w]))
            return int(self.owner_of(target)) % n_workers

        # LOCALITY: worker holding the most input bytes, ties by availability.
        weight: dict[int, float] = {}
        size = self.tile_bytes or (lambda ref: 1.0)
        for ref in task.accesses:
            w = int(self.owner_of(ref)) % n_workers
            weight[w] = weight.get(w, 0.0) + float(size(ref))
        best = max(weight.items(), key=lambda kv: (kv[1], -worker_available[kv[0]]))
        return best[0]

    @staticmethod
    def order_ready(tasks: Sequence[Task]) -> list[Task]:
        """Order ready tasks by decreasing priority then declaration order."""
        return sorted(
            tasks, key=lambda t: (-t.priority,)
        )


def block_cyclic_owner(grid_p: int, grid_q: int) -> Callable[[TileRef], int]:
    """Owner function for a 2D block-cyclic distribution over a process grid.

    Tile references of the form ``(label, i, j)`` map to process
    ``(i % grid_p) * grid_q + (j % grid_q)``; references without two integer
    coordinates map to process 0.
    """

    def owner(ref: TileRef) -> int:
        if isinstance(ref, tuple) and len(ref) >= 3:
            i, j = int(ref[-2]), int(ref[-1])
            return (i % grid_p) * grid_q + (j % grid_q)
        return 0

    return owner
