"""Per-process memory accounting for heterogeneous (mixed-precision) tiles.

PaRSEC had to grow dynamic, sender-driven memory allocation because tiles
of a regularly distributed matrix no longer have a uniform size once each
tile may be stored at a different precision (Section III-C).  The
:class:`MemoryTracker` reproduces the accounting side of that feature: it
tracks live allocations per process, the high-water mark, and whether an
allocation would exceed the process's GPU memory, which the simulator and
the performance model use to size the largest feasible problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MemoryTracker", "OutOfMemoryError"]


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation exceeds the configured capacity."""


@dataclass
class MemoryTracker:
    """Track live bytes and the high-water mark for one process.

    Parameters
    ----------
    capacity_bytes:
        Maximum allowed live bytes (``None`` disables the limit).
    """

    capacity_bytes: float | None = None
    live_bytes: float = 0.0
    high_water_bytes: float = 0.0
    allocations: dict = field(default_factory=dict)
    failed_allocations: int = 0

    def allocate(self, key, nbytes: float, strict: bool = True) -> None:
        """Register an allocation of ``nbytes`` under ``key``.

        Re-allocating an existing key first frees the previous size (this is
        what happens when a tile is converted to another precision in
        place).
        """
        if key in self.allocations:
            self.free(key)
        if (
            self.capacity_bytes is not None
            and self.live_bytes + nbytes > self.capacity_bytes
        ):
            self.failed_allocations += 1
            if strict:
                raise OutOfMemoryError(
                    f"allocation of {nbytes:.3g} B exceeds capacity "
                    f"{self.capacity_bytes:.3g} B (live {self.live_bytes:.3g} B)"
                )
        self.allocations[key] = nbytes
        self.live_bytes += nbytes
        self.high_water_bytes = max(self.high_water_bytes, self.live_bytes)

    def free(self, key) -> None:
        """Release the allocation registered under ``key``."""
        nbytes = self.allocations.pop(key, 0.0)
        self.live_bytes -= nbytes

    def utilisation(self) -> float:
        """Fraction of capacity currently in use (0 when no limit is set)."""
        if not self.capacity_bytes:
            return 0.0
        return self.live_bytes / self.capacity_bytes

    def reset(self) -> None:
        """Clear all allocations and statistics."""
        self.allocations.clear()
        self.live_bytes = 0.0
        self.high_water_bytes = 0.0
        self.failed_allocations = 0
