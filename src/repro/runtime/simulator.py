"""Discrete-event simulation of task DAGs on distributed machines.

The simulator replays a task graph on a machine model: each task is placed
on a worker (GPU) according to the scheduler policy, its duration is the
kernel flop count divided by the GPU's sustained rate at the task's compute
precision, and its start is delayed until all producing tasks have finished
and their tiles have been transferred (point-to-point or broadcast,
depending on fan-out) under the communication model.

The output :class:`SimulationReport` carries the quantities the paper
reports: makespan, achieved flop rate, per-worker utilisation, total
communication volume, and the per-process memory high-water mark.  The
simulator is used at moderate DAG sizes to validate and calibrate the
closed-form performance model in :mod:`repro.systems.perf_model`, and to run
the ablations (collective priority, sender- versus receiver-side
conversion, scheduling policy) that do not need full machine scale.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.communication import CommunicationModel
from repro.runtime.dag import TaskGraph, build_task_graph
from repro.runtime.machine import MachineSpec
from repro.runtime.memory import MemoryTracker
from repro.runtime.scheduler import ListScheduler, SchedulePolicy
from repro.runtime.task import Task, TileRef

__all__ = ["SimulationReport", "DistributedSimulator"]


@dataclass
class SimulationReport:
    """Results of one simulated execution."""

    makespan_s: float
    total_flops: float
    n_tasks: int
    n_workers: int
    worker_busy_s: list[float]
    comm_bytes: float
    comm_time_s: float
    memory_high_water_bytes: dict[int, float] = field(default_factory=dict)
    task_finish_s: dict[str, float] = field(default_factory=dict)

    @property
    def achieved_gflops(self) -> float:
        """Sustained rate over the whole execution in GFlop/s."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_flops / self.makespan_s / 1.0e9

    @property
    def achieved_pflops(self) -> float:
        """Sustained rate in PFlop/s."""
        return self.achieved_gflops / 1.0e6

    @property
    def average_utilisation(self) -> float:
        """Mean fraction of the makespan each worker spent computing."""
        if self.makespan_s <= 0 or not self.worker_busy_s:
            return 0.0
        return float(np.mean(self.worker_busy_s)) / self.makespan_s

    def efficiency_vs(self, reference: "SimulationReport") -> float:
        """Per-worker efficiency relative to a reference run (scaling studies)."""
        if self.n_workers == 0 or reference.n_workers == 0:
            return 0.0
        mine = self.achieved_gflops / self.n_workers
        ref = reference.achieved_gflops / reference.n_workers
        return mine / ref if ref > 0 else 0.0


class DistributedSimulator:
    """Simulate a task DAG on a distributed GPU machine.

    Parameters
    ----------
    machine:
        The machine allocation (its GPU count bounds the worker count).
    comm:
        Communication model; defaults to one built from ``machine``.
    scheduler:
        Worker-selection policy; defaults to owner-computes over a square-ish
        process grid when an owner map is provided, otherwise
        earliest-available.
    workers:
        Number of workers (GPUs) to simulate; defaults to the machine's GPU
        count, capped to keep the simulation tractable.
    task_overhead_us:
        Fixed per-task runtime overhead (task activation, kernel launch).
    """

    def __init__(
        self,
        machine: MachineSpec,
        comm: CommunicationModel | None = None,
        scheduler: ListScheduler | None = None,
        workers: int | None = None,
        task_overhead_us: float = 15.0,
        track_memory: bool = True,
    ) -> None:
        self.machine = machine
        self.comm = comm or CommunicationModel(machine)
        self.workers = workers if workers is not None else machine.total_gpus
        if self.workers < 1:
            raise ValueError("at least one worker required")
        self.scheduler = scheduler or ListScheduler(policy=SchedulePolicy.EARLIEST)
        self.task_overhead_s = task_overhead_us * 1.0e-6
        self.track_memory = track_memory

    # ------------------------------------------------------------------ #
    def _duration(self, task: Task) -> float:
        rate = self.machine.node.gpu.effective_rate(task.precision) * 1.0e9
        return self.task_overhead_s + task.flops / rate

    def _worker_node(self, worker: int) -> int:
        return worker // self.machine.node.gpus_per_node

    def _transfer_time(self, nbytes: float, src: int, dst: int, fanout: int) -> float:
        if src == dst or nbytes <= 0:
            return 0.0
        if self._worker_node(src) == self._worker_node(dst):
            return self.comm.intra_node(nbytes)
        if fanout > 1:
            return self.comm.broadcast(nbytes, fanout)
        return self.comm.point_to_point(nbytes)

    # ------------------------------------------------------------------ #
    def run(
        self,
        tasks: TaskGraph | list[Task],
        tile_bytes: dict[TileRef, float] | None = None,
    ) -> SimulationReport:
        """Simulate the execution of ``tasks`` and return the report.

        ``tile_bytes`` maps tile references to their size; tasks whose read
        tiles live on another worker pay the corresponding transfer cost.
        """
        graph = tasks if isinstance(tasks, TaskGraph) else build_task_graph(tasks)
        order = graph.topological_order()
        tile_bytes = tile_bytes or {}

        worker_available = [0.0] * self.workers
        worker_busy = [0.0] * self.workers
        finish: dict[str, float] = {}
        placed: dict[str, int] = {}
        writer_of: dict[TileRef, str] = {}
        fanout: dict[str, int] = defaultdict(int)
        for t in order:
            for ref in t.reads:
                if ref in writer_of:
                    fanout[writer_of[ref]] += 1
            for ref in t.writes:
                writer_of[ref] = t.name

        # Re-derive writers in program order for the actual simulation pass.
        writer_of.clear()
        comm_bytes = 0.0
        comm_time = 0.0
        memory: dict[int, MemoryTracker] = defaultdict(MemoryTracker)

        for task in order:
            worker = self.scheduler.select_worker(task, worker_available)
            worker = worker % self.workers
            placed[task.name] = worker

            ready = 0.0
            for ref in task.reads:
                producer = writer_of.get(ref)
                if producer is None:
                    continue
                src = placed[producer]
                nbytes = float(tile_bytes.get(ref, 0.0))
                xfer = self._transfer_time(nbytes, src, worker, fanout[producer])
                if src != worker:
                    comm_bytes += nbytes
                    comm_time += xfer
                ready = max(ready, finish[producer] + xfer)
            for ref in task.writes:
                producer = writer_of.get(ref)
                if producer is not None:
                    ready = max(ready, finish[producer])

            start = max(ready, worker_available[worker])
            duration = self._duration(task)
            end = start + duration
            worker_available[worker] = end
            worker_busy[worker] += duration
            finish[task.name] = end

            if self.track_memory:
                tracker = memory[worker]
                for ref in task.writes:
                    tracker.allocate(ref, float(tile_bytes.get(ref, 0.0)), strict=False)
            for ref in task.writes:
                writer_of[ref] = task.name

        makespan = max(finish.values()) if finish else 0.0
        return SimulationReport(
            makespan_s=makespan,
            total_flops=graph.total_flops(),
            n_tasks=graph.n_tasks,
            n_workers=self.workers,
            worker_busy_s=worker_busy,
            comm_bytes=comm_bytes,
            comm_time_s=comm_time,
            memory_high_water_bytes={
                w: m.high_water_bytes for w, m in memory.items()
            },
            task_finish_s=finish,
        )
