"""Local numerical execution of task DAGs.

The :class:`LocalExecutor` is the piece of the runtime that actually
computes: it walks a task graph in dependency order and applies each task's
kernel to a :class:`TileStore`.  On the single-node Python substrate the
execution is sequential, but the executor still verifies that the order it
follows respects the DAG (exactly what a dataflow runtime guarantees) and
records an execution trace that the tests cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.runtime.dag import TaskGraph, build_task_graph
from repro.runtime.task import Task, TileRef

__all__ = ["TileStore", "ExecutionTrace", "LocalExecutor"]


class TileStore(dict):
    """Mapping from tile references to ``numpy`` arrays.

    A thin ``dict`` subclass that adds byte accounting; tasks mutate the
    arrays in place or rebind keys to new arrays (e.g. precision
    conversions).
    """

    def total_bytes(self) -> int:
        """Total storage currently held by the store."""
        return int(sum(np.asarray(v).nbytes for v in self.values()))

    def dtype_histogram(self) -> dict[str, int]:
        """Number of tiles per dtype name (mixed-precision bookkeeping)."""
        out: dict[str, int] = {}
        for v in self.values():
            key = str(np.asarray(v).dtype)
            out[key] = out.get(key, 0) + 1
        return out


@dataclass
class ExecutionTrace:
    """Record of a local execution."""

    order: list[str] = field(default_factory=list)
    flops: float = 0.0
    tasks_by_kind: dict[str, int] = field(default_factory=dict)

    def record(self, task: Task) -> None:
        """Append a completed task to the trace."""
        self.order.append(task.name)
        self.flops += task.flops
        self.tasks_by_kind[task.kind] = self.tasks_by_kind.get(task.kind, 0) + 1


class LocalExecutor:
    """Execute task kernels locally, respecting DAG order.

    Parameters
    ----------
    validate:
        When true (default), re-derive the dependency graph and assert the
        execution order is a valid linear extension; catches task lists
        whose declared accesses do not cover their true data flow.
    """

    def __init__(self, validate: bool = True) -> None:
        self.validate = validate

    def run(
        self,
        tasks: Iterable[Task] | TaskGraph,
        store: TileStore,
    ) -> ExecutionTrace:
        """Execute ``tasks`` against ``store`` and return the trace."""
        graph = tasks if isinstance(tasks, TaskGraph) else build_task_graph(list(tasks))
        order = graph.topological_order()
        if self.validate:
            self._check_order(graph, order)
        trace = ExecutionTrace()
        for task in order:
            task.execute(store)
            trace.record(task)
        return trace

    @staticmethod
    def _check_order(graph: TaskGraph, order: list[Task]) -> None:
        position = {t.name: i for i, t in enumerate(order)}
        for u, v in graph.graph.edges:
            if position[u] >= position[v]:
                raise RuntimeError(f"execution order violates dependency {u} -> {v}")
