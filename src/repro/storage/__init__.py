"""Storage accounting: the "saving petabytes" analysis.

The paper motivates the emulator by the storage cost of CMIP-class archives
(CMIP6: ~28 PB across centres; NCAR's contribution alone: 2 PB at ~$45 per
TB per year) and of kilometre-scale runs (SCREAM: ~4.5 TB per simulated
day).  :mod:`repro.storage.accounting` reproduces that arithmetic: the raw
size of a simulation archive at a given resolution/length/ensemble size,
the footprint of the fitted emulator parameters that can regenerate
statistically consistent members, and the resulting savings in bytes and
dollars.
"""

from repro.storage.accounting import (
    CMIP6_ARCHIVE,
    StorageScenario,
    archive_bytes,
    campaign_storage_report,
    cross_tier_storage_report,
    emulator_parameter_bytes,
    format_bytes,
    measured_artifact_report,
    savings_report,
    serving_storage_report,
)
from repro.storage.chunkstore import CHUNK_ENCODINGS, ChunkStore

__all__ = [
    "CHUNK_ENCODINGS",
    "CMIP6_ARCHIVE",
    "ChunkStore",
    "StorageScenario",
    "archive_bytes",
    "campaign_storage_report",
    "cross_tier_storage_report",
    "emulator_parameter_bytes",
    "format_bytes",
    "measured_artifact_report",
    "savings_report",
    "serving_storage_report",
]
