"""Storage arithmetic behind the paper's petabyte-savings claims.

Raw archives store every field value of every member: ``R * T * N_theta *
N_phi`` numbers per variable.  The emulator instead stores per-location
trend/scale parameters (``O(N_theta * N_phi)``), the diagonal VAR
coefficients (``O(P L^2)``) and the innovation covariance factor
(``O(L^4)``), from which arbitrarily many statistically consistent members
can be regenerated on demand.  For long records and large ensembles the
ratio is enormous — this module quantifies it, including the NCAR
$45/TB/year cost figure quoted in the introduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sht.grid import Grid
from repro.storage.chunkstore import ChunkStore

__all__ = [
    "StorageScenario",
    "CMIP6_ARCHIVE",
    "archive_bytes",
    "campaign_storage_report",
    "cross_tier_storage_report",
    "emulator_parameter_bytes",
    "measured_artifact_report",
    "savings_report",
    "serving_storage_report",
    "format_bytes",
]

#: Cost of keeping one terabyte on disk for a year at NCAR (Section I).
DOLLARS_PER_TB_YEAR = 45.0

#: Context figures quoted in the introduction (bytes).
CMIP6_ARCHIVE = {
    "cmip3_total": 40.0e12,
    "cmip5_total": 2.0e15,
    "cmip6_total": 28.0e15,
    "ncar_cmip6_post_processed": 2.0e15,
    "giss_cmip6": 147.0e12,
    "scream_per_simulated_day": 4.5e12,
    "icon_dyamond_per_output_sample": 1.0e12,
}


@dataclass(frozen=True)
class StorageScenario:
    """A simulation archive whose storage the emulator can stand in for.

    Parameters
    ----------
    name:
        Label used in reports.
    grid:
        Spatial grid of the archived fields.
    n_years:
        Length of the record in years.
    steps_per_year:
        Temporal resolution (8760 hourly, 365 daily, 12 monthly).
    n_ensemble:
        Number of archived ensemble members.
    n_variables:
        Number of archived 2-D fields (the paper's study uses surface
        temperature only; CMIP archives store hundreds).
    bytes_per_value:
        Stored element size (4 for float32 archives).
    """

    name: str
    grid: Grid
    n_years: float
    steps_per_year: int
    n_ensemble: int = 1
    n_variables: int = 1
    bytes_per_value: int = 4

    @property
    def n_time(self) -> int:
        """Number of archived time steps."""
        return int(round(self.n_years * self.steps_per_year))

    @property
    def n_values(self) -> int:
        """Total stored values."""
        return (
            self.n_ensemble
            * self.n_variables
            * self.n_time
            * self.grid.npoints
        )


def archive_bytes(scenario: StorageScenario) -> float:
    """Raw archive size in bytes."""
    return float(scenario.n_values) * scenario.bytes_per_value


def emulator_parameter_bytes(
    grid: Grid,
    lmax: int,
    var_order: int = 3,
    n_trend_params: int = 14,
    bytes_per_value: float = 8.0,
    store_full_covariance: bool = True,
) -> float:
    """Footprint of the fitted emulator parameters in bytes.

    ``n_trend_params`` counts the per-location values of Eq. (2)
    (``beta_0, beta_1, beta_2, rho, {a_k, b_k}_{k<=K}, sigma, v``; the paper's
    ``K = 5`` gives 14 when the scale and nugget fields are included).  The
    spectral side stores the ``P`` diagonal VAR matrices (``P L^2`` values)
    and either the full innovation covariance factor (``L^2 (L^2 + 1)/2``)
    or, when ``store_full_covariance`` is false, a diagonal approximation.
    """
    k = lmax * lmax
    per_location = n_trend_params * grid.npoints
    var_params = var_order * k
    cov_params = k * (k + 1) // 2 if store_full_covariance else k
    return float(per_location + var_params + cov_params) * bytes_per_value


def savings_report(
    scenario: StorageScenario,
    lmax: int,
    var_order: int = 3,
    dollars_per_tb_year: float = DOLLARS_PER_TB_YEAR,
    store_full_covariance: bool = True,
) -> dict:
    """Raw-versus-emulator storage comparison for a scenario.

    ``store_full_covariance=False`` corresponds to keeping only the diagonal
    innovation variances (appropriate at very high band-limits, where the
    dense ``L^2 x L^2`` factor would itself approach the raw-data volume).
    """
    raw = archive_bytes(scenario)
    emulator = emulator_parameter_bytes(
        scenario.grid, lmax, var_order=var_order,
        store_full_covariance=store_full_covariance,
    )
    saved = max(raw - emulator, 0.0)
    return {
        "scenario": scenario.name,
        "raw_bytes": raw,
        "emulator_bytes": emulator,
        "saved_bytes": saved,
        "compression_factor": raw / emulator if emulator else float("inf"),
        "raw_petabytes": raw / 1.0e15,
        "saved_petabytes": saved / 1.0e15,
        "annual_cost_raw_usd": raw / 1.0e12 * dollars_per_tb_year,
        "annual_cost_emulator_usd": emulator / 1.0e12 * dollars_per_tb_year,
        "annual_savings_usd": saved / 1.0e12 * dollars_per_tb_year,
    }


def measured_artifact_report(emulator) -> dict:
    """Measured on-disk artifact bytes next to the theoretical parameter bytes.

    ``savings_report`` and :func:`emulator_parameter_bytes` count parameter
    *values*; this report serialises a fitted
    :class:`~repro.core.emulator.ClimateEmulator` to its NPZ artifact in
    memory and reports what the bytes actually come out to, including
    format overhead and compression — the honest version of the
    petabyte-savings arithmetic.
    """
    measured = emulator.measured_artifact_bytes()
    theoretical = emulator.parameter_bytes()
    summary = emulator.training_summary
    raw = summary.raw_bytes(np.float32) if summary is not None else 0
    return {
        "measured_artifact_bytes": measured,
        "parameter_bytes": theoretical,
        "format_overhead_factor": measured / theoretical if theoretical else float("inf"),
        "raw_bytes_float32": raw,
        "measured_compression_factor": raw / measured if measured else float("inf"),
        "theoretical_compression_factor": raw / theoretical if theoretical else float("inf"),
    }


def campaign_storage_report(manifest, store=None) -> dict:
    """The "boosting" arithmetic for a scenario campaign.

    A campaign replays one small artifact into many emulated members; this
    report quantifies the amplification: the measured bytes of generated
    output across every run of a
    :class:`~repro.scenarios.campaign.CampaignManifest` (or its
    ``to_dict()`` form) against the measured bytes of the artifact that
    produced them.  The boost factor is the storage story run in reverse —
    instead of compressing an existing archive, the same ratio measures
    how much archive-equivalent data one artifact can emit.

    For a store-backed campaign (``run_campaign(store=...)``) pass the
    :class:`~repro.storage.chunkstore.ChunkStore` (or its ``stats()``
    dict) as ``store`` to add the persistent-tier ledger: the encoded
    shard footprint, its measured ``max_abs_error``, and
    ``store_boost_factor`` — the full-precision bytes the store can
    re-serve per artifact byte.  ``store=None`` on a store-backed
    manifest opens the store the manifest's header records and reports
    its live totals; if that root is gone, the header's root/encoding
    are reported with zero byte totals.
    """
    if not isinstance(manifest, dict):
        manifest = manifest.to_dict()
    total = int(manifest["total_output_bytes"])
    artifact = int(manifest.get("artifact_bytes", 0))
    n_runs = int(manifest["n_runs"])
    scenarios = list(manifest.get("scenarios", []))
    # Wall-clock throughput from the manifest's span-sourced timing
    # block; manifests written before timing existed report 0.0.
    wall = float(manifest.get("timing", {}).get("total_wall_seconds", 0.0))
    report = {
        "n_runs": n_runs,
        "n_scenarios": len(scenarios),
        "campaign_output_bytes": total,
        "artifact_bytes": artifact,
        "boost_factor": total / artifact if artifact else float("inf"),
        "output_bytes_per_run": total / n_runs if n_runs else 0.0,
        "wall_seconds": wall,
        "runs_per_second": n_runs / wall if wall > 0.0 else 0.0,
        "output_bytes_per_second": total / wall if wall > 0.0 else 0.0,
    }
    header = manifest.get("store")
    stats = None
    if store is not None:
        stats = store if isinstance(store, dict) else store.stats()
    elif header is not None:
        try:
            stats = ChunkStore(
                str(header["root"]), encoding=str(header["encoding"])
            ).stats()
        except (OSError, ValueError):
            stats = None  # root moved or re-encoded; report the header
    if stats is not None or header is not None:
        stored = int(stats["decoded_bytes"]) if stats else 0
        encoded = int(stats["encoded_bytes"]) if stats else 0
        report["store"] = {
            "root": stats["root"] if stats else str(header["root"]),
            "encoding": stats["encoding"] if stats else str(header["encoding"]),
            "n_chunks": int(stats["n_chunks"]) if stats else 0,
            "encoded_bytes": encoded,
            "decoded_bytes": stored,
            "max_abs_error": float(stats["max_abs_error"]) if stats else 0.0,
            "compression_factor": (
                float(stats["compression_factor"]) if stats else float("inf")
            ),
            # What the persistent tier amplifies the artifact into: the
            # full-precision bytes it re-serves without any synthesis.
            "store_boost_factor": stored / artifact if artifact else float("inf"),
        }
    return report


def serving_storage_report(service) -> dict:
    """The "boosting" arithmetic for an on-demand emulation service.

    :func:`campaign_storage_report` measures a batch replay; this is the
    serving-side counterpart: the measured ``float64`` bytes an
    :class:`~repro.serving.service.EmulationService` (or its ``stats()``
    dict) has *served* against the bytes of the artifact it serves from
    — the live version of the paper's artifact-to-output boost factor.
    When a persistent :class:`~repro.storage.chunkstore.ChunkStore` is
    attached, its encoded footprint and measured quantization error are
    included, so the report quantifies the full storage ladder:
    artifact < chunk shards < served output.
    """
    stats = service if isinstance(service, dict) else service.stats()
    served = int(stats["served_bytes"])
    artifact = int(stats.get("artifact_bytes", 0))
    synthesized = int(stats["synthesis"]["chunks"])
    store = stats.get("store")
    report = {
        "requests": int(stats["requests"]),
        "served_bytes": served,
        "artifact_bytes": artifact,
        "boost_factor": served / artifact if artifact else float("inf"),
        "synthesized_chunks": synthesized,
        "store_encoded_bytes": int(store["encoded_bytes"]) if store else 0,
        "store_lossless": bool(store["lossless"]) if store else True,
        "store_max_abs_error": float(store["max_abs_error"]) if store else 0.0,
    }
    return report


def cross_tier_storage_report(manifest, service) -> dict:
    """The boost factor across *both* tiers of one shared chunk store.

    The unified storage engine's headline number: a campaign
    (``run_campaign(store=...)``) lands chunks in the
    :class:`~repro.storage.chunkstore.ChunkStore`, the
    :class:`~repro.serving.service.EmulationService` serves them back
    out of the same root, and this report merges
    :func:`campaign_storage_report` and :func:`serving_storage_report`
    over that shared tier:

    * ``emitted_bytes`` — campaign output plus served output, the total
      archive-equivalent data the one artifact produced;
    * ``cross_tier_boost_factor`` — ``emitted_bytes / artifact_bytes``,
      the paper's boost arithmetic spanning batch and on-demand tiers;
    * ``store_amplification`` — ``emitted_bytes`` per encoded shard
      byte: how much output each persistent byte stands behind (rises
      with the quantized encodings and with every re-serve);
    * ``prewarmed_fraction`` — served requests' store hits over store
      hits plus synthesized chunks: 1.0 means the campaign pre-warmed
      every chunk serving needed (the zero-cold-flight regime).

    Parameters
    ----------
    manifest:
        A :class:`~repro.scenarios.campaign.CampaignManifest` or its
        dict form.
    service:
        The :class:`~repro.serving.service.EmulationService` over the
        same store root, or its ``stats()`` dict.
    """
    stats = service if isinstance(service, dict) else service.stats()
    store_stats = stats.get("store")
    campaign = campaign_storage_report(manifest, store=store_stats)
    serving = serving_storage_report(stats)
    artifact = max(campaign["artifact_bytes"], serving["artifact_bytes"])
    emitted = campaign["campaign_output_bytes"] + serving["served_bytes"]
    encoded = serving["store_encoded_bytes"]
    store_hits = int(stats.get("store_chunk_hits", 0))
    synthesized = serving["synthesized_chunks"]
    resolved = store_hits + synthesized
    return {
        "artifact_bytes": artifact,
        "campaign_output_bytes": campaign["campaign_output_bytes"],
        "served_bytes": serving["served_bytes"],
        "emitted_bytes": emitted,
        "cross_tier_boost_factor": emitted / artifact if artifact else float("inf"),
        "store_encoded_bytes": encoded,
        "store_amplification": emitted / encoded if encoded else float("inf"),
        "store_max_abs_error": serving["store_max_abs_error"],
        "store_lossless": serving["store_lossless"],
        "store_chunk_hits": store_hits,
        "synthesized_chunks": synthesized,
        "prewarmed_fraction": store_hits / resolved if resolved else 1.0,
        "campaign": campaign,
        "serving": serving,
    }


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (KB/MB/GB/TB/PB)."""
    units = ["B", "KB", "MB", "GB", "TB", "PB", "EB"]
    value = float(nbytes)
    for unit in units:
        if abs(value) < 1000.0 or unit == units[-1]:
            return f"{value:.2f} {unit}"
        value /= 1000.0
    return f"{value:.2f} EB"  # pragma: no cover - unreachable
