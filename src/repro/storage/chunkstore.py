"""Persistent, manifest-indexed store of content-addressed field chunks.

The serving layer's third tier (after the in-process LRU and synthesis):
a directory of NPZ shards keyed by chunk content-address, indexed by a
single ``manifest.json``.  A chunk written once is served forever without
re-synthesis — across processes and restarts — which is what turns the
emulator artifact into a *persistent* output cache rather than a purely
in-memory one.

Three encodings trade bytes for fidelity:

* ``"float64"`` (default) — bit-lossless: ``get`` returns exactly the
  array that was ``put``, preserving the service's bit-exactness
  contract through the persistent tier.
* ``"float32"`` — half the bytes; round-trip error is float32 rounding
  (measured per chunk and recorded in the manifest).
* ``"int16"`` — opt-in quantized tier: values are stored as
  ``int16`` with a per-chunk ``scale``/``offset`` (midrange/halfrange
  affine map), a quarter of the float64 bytes.  The *measured* maximum
  absolute reconstruction error of every chunk is recorded in the
  manifest, so consumers can report exactly how lossy the tier is.

Lossy encodings reject non-finite input: a ``put`` of a chunk holding
NaN/Inf under ``"float32"``/``"int16"`` raises ``ValueError`` before any
shard is written (quantising against a NaN midrange would store an
all-zero payload with ``offset = nan``), while the bit-lossless
``"float64"`` tier accepts any bit pattern.

A store has one encoding for its whole lifetime (recorded in the
manifest; reopening with a different one raises), decodes every ``get``
back to ``float64``, and is safe for concurrent use within a process
(one lock around manifest and file mutation).  Shard writes go through a
temporary file + ``os.replace`` so a crash never leaves a truncated
shard behind a manifest entry.

Across processes the store is *merge-on-write*: every manifest write
re-reads the on-disk manifest and unions its entries first, so two
services writing into one directory converge on the superset of their
chunks (entries are content-addressed and immutable, making the union
safe).  There is no cross-process file lock, so a reader only observes
entries present at its last manifest (re)load — reopen the store to see
chunks another process added since.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import threading

import numpy as np

from repro.obs import counter_add, span

__all__ = ["ChunkStore", "CHUNK_ENCODINGS"]

#: Supported chunk encodings, lossless first.
CHUNK_ENCODINGS = ("float64", "float32", "int16")

_MANIFEST_SCHEMA = 1


def _require_finite(array: np.ndarray, encoding: str) -> None:
    """Reject non-finite chunks for lossy encodings, before anything is written.

    An ``int16`` encode of a chunk containing NaN/Inf would silently
    quantise against a non-finite midrange — NaN casts to 0, so the
    stored payload is all zeros with ``offset = nan`` and the manifest
    records ``max_abs_error: nan`` — irrecoverable corruption dressed as
    a stored chunk.  A ``float32`` encode keeps the non-finite values
    but its measured round-trip error degenerates to NaN, poisoning the
    manifest's error accounting the same way.  The lossless ``float64``
    encoding round-trips any bit pattern and stays permissive.
    """
    if encoding != "float64" and not np.isfinite(array).all():
        raise ValueError(
            f"chunk contains non-finite values (NaN/Inf), which the lossy "
            f"{encoding!r} encoding cannot represent faithfully; store "
            f"non-finite chunks with the lossless 'float64' encoding"
        )


def _encode(array: np.ndarray, encoding: str, *, validated: bool = False):
    """Encode a float64 array; returns ``(payload, scale, offset, max_abs_error)``.

    Raises ``ValueError`` for non-finite input under a lossy encoding —
    callers invoke this before any shard file is created, so a rejected
    chunk leaves neither a shard nor a manifest entry behind.
    ``validated=True`` skips the finiteness scan for callers that
    already ran :func:`_require_finite` on the exact same array
    (the batched ``put_many`` pre-validation), so no chunk is scanned
    twice.
    """
    array = np.asarray(array, dtype=np.float64)
    if not validated:
        _require_finite(array, encoding)
    if encoding == "float64":
        return array, None, None, 0.0
    if encoding == "float32":
        encoded = array.astype(np.float32)
        err = float(np.max(np.abs(encoded.astype(np.float64) - array))) if array.size else 0.0
        return encoded, None, None, err
    if encoding == "int16":
        lo = float(array.min()) if array.size else 0.0
        hi = float(array.max()) if array.size else 0.0
        offset = 0.5 * (hi + lo)
        half = 0.5 * (hi - lo)
        scale = half / 32767.0 if half > 0.0 else 1.0
        encoded = np.round((array - offset) / scale).astype(np.int16)
        decoded = encoded.astype(np.float64) * scale + offset
        err = float(np.max(np.abs(decoded - array))) if array.size else 0.0
        return encoded, scale, offset, err
    raise ValueError(
        f"unknown chunk encoding {encoding!r}; expected one of {CHUNK_ENCODINGS}"
    )


def _decode(payload: np.ndarray, scale, offset) -> np.ndarray:
    """Decode a stored payload back to float64."""
    if payload.dtype == np.int16:
        return payload.astype(np.float64) * float(scale) + float(offset)
    return payload.astype(np.float64)


class ChunkStore:
    """Read-through / write-through persistent tier for served chunks.

    Parameters
    ----------
    root:
        Directory of the store (created if missing).  Holds
        ``manifest.json`` plus shard files under ``chunks/``.
    encoding:
        One of :data:`CHUNK_ENCODINGS`.  ``"float64"`` is lossless;
        ``"int16"`` is the opt-in quantized tier (4x smaller, measured
        ``max_abs_error`` recorded per chunk).  Reopening an existing
        store with a different encoding raises ``ValueError``.

    Examples
    --------
    >>> import numpy as np, tempfile
    >>> store = ChunkStore(tempfile.mkdtemp(), encoding="float64")
    >>> entry = store.put("abc123", np.ones((2, 3)))
    >>> bool(np.array_equal(store.get("abc123"), np.ones((2, 3))))
    True
    """

    def __init__(self, root: "str | os.PathLike", encoding: str = "float64"):
        if encoding not in CHUNK_ENCODINGS:
            raise ValueError(
                f"unknown chunk encoding {encoding!r}; expected one of {CHUNK_ENCODINGS}"
            )
        self.root = os.fspath(root)
        self.encoding = str(encoding)
        self._lock = threading.Lock()
        self._manifest_path = os.path.join(self.root, "manifest.json")
        os.makedirs(os.path.join(self.root, "chunks"), exist_ok=True)
        self._chunks: dict[str, dict] = {}
        if os.path.exists(self._manifest_path):
            with open(self._manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            if manifest.get("schema") != _MANIFEST_SCHEMA:
                raise ValueError(
                    f"unsupported chunk-store manifest schema "
                    f"{manifest.get('schema')!r} at {self._manifest_path}"
                )
            if manifest.get("encoding") != self.encoding:
                raise ValueError(
                    f"store at {self.root} was created with encoding "
                    f"{manifest.get('encoding')!r}; reopen with that encoding "
                    f"instead of {self.encoding!r}"
                )
            self._chunks = dict(manifest.get("chunks", {}))
        else:
            self._write_manifest_locked()

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def lossless(self) -> bool:
        """Whether ``get`` returns bit-identical arrays (float64 encoding)."""
        return self.encoding == "float64"

    def __len__(self) -> int:
        with self._lock:
            return len(self._chunks)

    def __contains__(self, address: str) -> bool:
        with self._lock:
            return str(address) in self._chunks

    def addresses(self) -> list[str]:
        """Every stored chunk address, sorted."""
        with self._lock:
            return sorted(self._chunks)

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #
    def _shard_path(self, address: str) -> str:
        return os.path.join(self.root, "chunks", address[:2], f"{address}.npz")

    def _write_manifest_locked(self) -> None:
        # Merge-on-write: union entries another process may have added
        # since our last load.  Entries are content-addressed and
        # immutable, so the union is always safe; our own entries win a
        # (byte-identical) collision.
        if os.path.exists(self._manifest_path):
            try:
                with open(self._manifest_path, "r", encoding="utf-8") as handle:
                    on_disk = json.load(handle)
            except (OSError, json.JSONDecodeError):
                on_disk = {}
            if (
                on_disk.get("schema") == _MANIFEST_SCHEMA
                and on_disk.get("encoding") == self.encoding
            ):
                merged = dict(on_disk.get("chunks", {}))
                merged.update(self._chunks)
                self._chunks = merged
        manifest = {
            "schema": _MANIFEST_SCHEMA,
            "encoding": self.encoding,
            "chunks": self._chunks,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".manifest-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, sort_keys=True)
            os.replace(tmp, self._manifest_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _write_shard(
        self, address: str, array: np.ndarray, *, validated: bool = False
    ) -> dict:
        """Encode and write one shard file; returns its manifest entry.

        Encoding (including the non-finite rejection, unless the caller
        pre-``validated`` the array) runs before any file is created, so
        a rejected chunk leaves nothing on disk.
        """
        array = np.asarray(array, dtype=np.float64)
        payload, scale, offset, err = _encode(
            array, self.encoding, validated=validated
        )
        path = self._shard_path(address)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), prefix=".shard-")
        try:
            with os.fdopen(fd, "wb") as handle:
                if scale is None:
                    np.savez(handle, data=payload)
                else:
                    np.savez(handle, data=payload, scale=scale, offset=offset)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        entry = {
            "file": os.path.relpath(path, self.root),
            "shape": [int(s) for s in array.shape],
            "encoding": self.encoding,
            "encoded_bytes": int(payload.nbytes),
            "decoded_bytes": int(array.nbytes),
            "max_abs_error": float(err),
        }
        if scale is not None:
            entry["scale"] = float(scale)
            entry["offset"] = float(offset)
        return entry

    def put(self, address: str, array: np.ndarray) -> dict:
        """Persist one chunk; returns its manifest entry.

        Idempotent: an address already in the store is left untouched
        (content addresses make re-encoding pointless), so concurrent
        writers of the same chunk cannot corrupt each other.  For many
        chunks at once prefer :meth:`put_many`, which writes the
        manifest a single time.
        """
        address = str(address)
        with self._lock:
            entry = self._chunks.get(address)
            if entry is not None:
                return dict(entry)
        with span("chunkstore.put", bytes=array.nbytes, encoding=self.encoding):
            entry = self._write_shard(address, array)
        counter_add("chunkstore.writes")
        counter_add("chunkstore.written_bytes", array.nbytes)
        with self._lock:
            # First writer wins; a concurrent identical put raced us to the
            # same content, so either entry is correct.
            entry = self._chunks.setdefault(address, entry)
            self._write_manifest_locked()
            return dict(entry)

    def put_many(self, chunks: "dict[str, np.ndarray]") -> int:
        """Persist a batch of chunks with one manifest write.

        The manifest is O(stored chunks) to serialise, so per-chunk
        writes would cost O(N^2) over a store's lifetime; the serving
        write-through path lands every synthesis flight through this
        batched form instead.  Returns the number of chunks actually
        written (addresses already present are skipped).
        """
        with self._lock:
            pending = {
                str(address): array
                for address, array in chunks.items()
                if str(address) not in self._chunks
            }
        if not pending:
            return 0
        # Validate the whole batch before writing anything: a non-finite
        # chunk under a lossy encoding must not leave earlier chunks of
        # the same batch behind as orphan shards.  The float64 view is
        # kept and the shard writes are marked pre-validated, so no
        # chunk is converted or scanned a second time.
        pending = {
            address: np.asarray(array, dtype=np.float64)
            for address, array in pending.items()
        }
        for array in pending.values():
            _require_finite(array, self.encoding)
        batch_bytes = sum(array.nbytes for array in pending.values())
        with span(
            "chunkstore.put_many",
            n_chunks=len(pending),
            bytes=batch_bytes,
            encoding=self.encoding,
        ):
            entries = {
                address: self._write_shard(address, array, validated=True)
                for address, array in pending.items()
            }
        counter_add("chunkstore.writes", len(pending))
        counter_add("chunkstore.written_bytes", batch_bytes)
        with self._lock:
            written = 0
            for address, entry in entries.items():
                if self._chunks.setdefault(address, entry) is entry:
                    written += 1
            self._write_manifest_locked()
            return written

    def get(self, address: str) -> "np.ndarray | None":
        """The decoded ``float64`` chunk, or ``None`` if absent."""
        address = str(address)
        with self._lock:
            entry = self._chunks.get(address)
            if entry is None:
                return None
            path = os.path.join(self.root, entry["file"])
        with span("chunkstore.get", encoding=self.encoding) as sp:
            with np.load(path) as payload:
                decoded = _decode(
                    payload["data"],
                    payload["scale"] if "scale" in payload else None,
                    payload["offset"] if "offset" in payload else None,
                )
            sp.set(bytes=decoded.nbytes)
        counter_add("chunkstore.reads")
        counter_add("chunkstore.read_bytes", decoded.nbytes)
        return decoded

    def entry(self, address: str) -> "dict | None":
        """The manifest entry of a chunk (shape, bytes, error), or ``None``."""
        with self._lock:
            entry = self._chunks.get(str(address))
            return dict(entry) if entry is not None else None

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _max_abs_error_locked(self) -> float:
        """Deterministic maximum over per-chunk errors, NaN included.

        ``max()`` over floats is order-dependent in the presence of NaN
        (``max(1.0, nan) == 1.0`` but ``max(nan, 1.0)`` is NaN), and a
        manifest written before non-finite chunks were rejected can
        carry ``max_abs_error: nan`` entries.  Any NaN entry makes the
        store-wide error unknown, so NaN is returned — deterministically,
        whatever the manifest iteration order.
        """
        errors = [float(e["max_abs_error"]) for e in self._chunks.values()]
        if not errors:
            return 0.0
        if any(math.isnan(err) for err in errors):
            return float("nan")
        return max(errors)

    def max_abs_error(self) -> float:
        """Largest measured reconstruction error across stored chunks.

        Exactly ``0.0`` for a lossless (float64) store; the quantized
        tier's honest error bound otherwise.  NaN — deterministically,
        regardless of manifest order — when a pre-existing manifest
        carries a corrupt ``max_abs_error: nan`` entry (written before
        non-finite chunks were rejected): the store-wide bound is then
        unknown, and pretending otherwise would hide the corruption.
        """
        with self._lock:
            return self._max_abs_error_locked()

    def stats(self) -> dict:
        """Store observability: chunk count, byte totals, encoding, error.

        ``max_abs_error`` follows :meth:`max_abs_error`'s NaN contract:
        a corrupt pre-existing manifest entry yields NaN, never an
        order-dependent value.
        """
        with self._lock:
            encoded = sum(int(e["encoded_bytes"]) for e in self._chunks.values())
            decoded = sum(int(e["decoded_bytes"]) for e in self._chunks.values())
            err = self._max_abs_error_locked()
            return {
                "root": self.root,
                "encoding": self.encoding,
                "lossless": self.lossless,
                "n_chunks": len(self._chunks),
                "encoded_bytes": encoded,
                "decoded_bytes": decoded,
                "compression_factor": decoded / encoded if encoded else float("inf"),
                "max_abs_error": err,
            }
