"""Persistent, manifest-indexed store of content-addressed field chunks.

The system's single persistence layer: a directory of NPZ shards keyed
by chunk content-address, indexed by one ``manifest.json``.  The serving
tier reads and write-throughs it, and campaigns (``run_campaign(store=...)``)
write straight into it, so a chunk written once is served forever without
re-synthesis — across processes and restarts.

Three encodings trade bytes for fidelity:

* ``"float64"`` (default) — bit-lossless: ``get`` returns exactly the
  array that was ``put``, preserving the service's bit-exactness
  contract through the persistent tier.
* ``"float32"`` — half the bytes; round-trip error is float32 rounding
  (measured per chunk and recorded in the manifest).
* ``"int16"`` — opt-in quantized tier: values are stored as
  ``int16`` with a per-chunk ``scale``/``offset`` (midrange/halfrange
  affine map), a quarter of the float64 bytes.  The *measured* maximum
  absolute reconstruction error of every chunk is recorded in the
  manifest, so consumers can report exactly how lossy the tier is.

Lossy encodings reject non-finite input: a ``put`` of a chunk holding
NaN/Inf under ``"float32"``/``"int16"`` raises ``ValueError`` before any
shard is written (quantising against a NaN midrange would store an
all-zero payload with ``offset = nan``), while the bit-lossless
``"float64"`` tier accepts any bit pattern.

A store has one encoding for its whole lifetime (recorded in the
manifest; reopening with a different one raises) and decodes every
``get`` back to ``float64``.

Concurrency — the commit protocol
---------------------------------
Within a process one ``threading.Lock`` guards the in-memory manifest
view.  Across processes, every manifest mutation is a *transaction*
guarded by a ``manifest.lock`` file acquired with
``O_CREAT | O_EXCL`` (atomic on every platform the repo targets):

1. acquire ``manifest.lock`` (bounded wait, stale-lock breaking);
2. re-read ``manifest.json`` — the on-disk copy is authoritative while
   the lock is held, so entries committed by other processes are never
   lost and entries pruned by other processes are never resurrected;
3. apply the mutation (entries are content-addressed and immutable, so
   first-writer-wins ``setdefault`` is always safe);
4. atomically replace ``manifest.json`` (temp file + ``os.replace``,
   so lock-free readers always observe a complete manifest);
5. release the lock.

Shard files are written *before* the transaction (content-addressed
writes are idempotent and need no lock) and each writer re-checks its
shard file still exists inside the transaction, which closes the race
against a concurrent ``prune``.  A crash between shard write and
manifest commit therefore leaves only an unreferenced shard — never a
manifest entry pointing at a missing shard — and
:meth:`ChunkStore.sweep_orphans` reclaims such shards after a grace
window.  A lock left behind by a killed process is broken after
``stale_lock_seconds``.

:meth:`ChunkStore.refresh` picks up foreign commits without reopening
(cheap: one ``stat`` compares the manifest's ``(mtime_ns, size)``
token), and ``get``/``in`` auto-refresh on a miss, so N campaign
workers and an ``EmulationService`` can share one store root live.
GC is explicit: :meth:`ChunkStore.prune` drops entries by age and/or a
byte budget (manifest entries are removed durably *before* their shard
files are unlinked, so a crash mid-prune strands shards, never
entries), and :meth:`ChunkStore.sweep_orphans` removes unreferenced
shards and stale temp files.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import tempfile
import threading
import time
import zipfile

import numpy as np

from repro.obs import counter_add, span

__all__ = ["ChunkStore", "CHUNK_ENCODINGS"]

#: Supported chunk encodings, lossless first.
CHUNK_ENCODINGS = ("float64", "float32", "int16")

_MANIFEST_SCHEMA = 1

#: Seconds between lock-acquisition attempts while another process
#: holds ``manifest.lock``.
_LOCK_POLL_SECONDS = 0.002


def _now() -> float:
    """Wall-clock seconds for storage bookkeeping only.

    Feeds entry ``stored_at`` timestamps (GC age), stale-lock detection
    and orphan-sweep grace windows — never any emulated output, which
    stays a pure function of ``(artifact, seed, request)``.
    """
    # reprolint: allow[determinism] GC timestamps and lock staleness only; emulated outputs never read this
    return time.time()


def _deadline_clock() -> float:
    """Monotonic seconds for the lock-acquisition deadline.

    Not a hot-path measurement (those go through ``repro.obs`` spans):
    a wall-clock deadline would jump under clock adjustment and either
    spin forever or give up instantly.
    """
    # reprolint: allow[telemetry-hygiene] lock-wait deadline arithmetic, not a timing measurement
    return time.monotonic()


def _require_finite(array: np.ndarray, encoding: str) -> None:
    """Reject non-finite chunks for lossy encodings, before anything is written.

    An ``int16`` encode of a chunk containing NaN/Inf would silently
    quantise against a non-finite midrange — NaN casts to 0, so the
    stored payload is all zeros with ``offset = nan`` and the manifest
    records ``max_abs_error: nan`` — irrecoverable corruption dressed as
    a stored chunk.  A ``float32`` encode keeps the non-finite values
    but its measured round-trip error degenerates to NaN, poisoning the
    manifest's error accounting the same way.  The lossless ``float64``
    encoding round-trips any bit pattern and stays permissive.
    """
    if encoding != "float64" and not np.isfinite(array).all():
        raise ValueError(
            f"chunk contains non-finite values (NaN/Inf), which the lossy "
            f"{encoding!r} encoding cannot represent faithfully; store "
            f"non-finite chunks with the lossless 'float64' encoding"
        )
    if encoding == "float32" and array.size:
        peak = float(np.max(np.abs(array)))
        if peak > float(np.finfo(np.float32).max):
            # The cast would overflow finite values to inf — a
            # non-finite stored payload dressed as a lossy round-trip.
            raise ValueError(
                f"chunk magnitude {peak:.6g} overflows the 'float32' "
                f"encoding (max ~3.4e38); store it with 'float64' or the "
                f"range-scaled 'int16' encoding"
            )


def _encode(array: np.ndarray, encoding: str, *, validated: bool = False):
    """Encode a float64 array; returns ``(payload, scale, offset, max_abs_error)``.

    Raises ``ValueError`` for non-finite input under a lossy encoding —
    callers invoke this before any shard file is created, so a rejected
    chunk leaves neither a shard nor a manifest entry behind.
    ``validated=True`` skips the finiteness scan for callers that
    already ran :func:`_require_finite` on the exact same array
    (the batched ``put_many`` pre-validation), so no chunk is scanned
    twice.
    """
    array = np.asarray(array, dtype=np.float64)
    if not validated:
        _require_finite(array, encoding)
    if encoding == "float64":
        return array, None, None, 0.0
    if encoding == "float32":
        encoded = array.astype(np.float32)
        err = float(np.max(np.abs(encoded.astype(np.float64) - array))) if array.size else 0.0
        return encoded, None, None, err
    if encoding == "int16":
        lo = float(array.min()) if array.size else 0.0
        hi = float(array.max()) if array.size else 0.0
        offset = 0.5 * (hi + lo)
        half = 0.5 * (hi - lo)
        scale = half / 32767.0 if half > 0.0 else 1.0
        if scale == 0.0:
            # half is subnormal and the quotient underflowed; any normal
            # scale quantizes the whole (tiny) range to level 0 exactly.
            scale = float(np.finfo(np.float64).tiny)
        # Clip before the int16 cast: rounding of (array - offset)/scale
        # can land a hair above 32767 at the range endpoints, and the
        # cast would wrap that to -32768 (a full-range error).
        levels = np.clip(np.round((array - offset) / scale), -32767.0, 32767.0)
        encoded = levels.astype(np.int16)
        decoded = encoded.astype(np.float64) * scale + offset
        err = float(np.max(np.abs(decoded - array))) if array.size else 0.0
        return encoded, scale, offset, err
    raise ValueError(
        f"unknown chunk encoding {encoding!r}; expected one of {CHUNK_ENCODINGS}"
    )


def _decode(payload: np.ndarray, scale, offset) -> np.ndarray:
    """Decode a stored payload back to float64."""
    if payload.dtype == np.int16:
        return payload.astype(np.float64) * float(scale) + float(offset)
    return payload.astype(np.float64)


class ChunkStore:
    """Read-through / write-through persistent tier for served chunks.

    Parameters
    ----------
    root:
        Directory of the store (created if missing).  Holds
        ``manifest.json`` plus shard files under ``chunks/``.
    encoding:
        One of :data:`CHUNK_ENCODINGS`.  ``"float64"`` is lossless;
        ``"int16"`` is the opt-in quantized tier (4x smaller, measured
        ``max_abs_error`` recorded per chunk).  Reopening an existing
        store with a different encoding raises ``ValueError``.
    lock_timeout:
        Seconds a manifest transaction waits for ``manifest.lock``
        before raising ``TimeoutError``.  Transactions are one JSON
        round-trip, so contention is short; the default outlasts any
        realistic writer burst.
    stale_lock_seconds:
        Age after which a ``manifest.lock`` left behind by a killed
        process is broken.  Must exceed the longest plausible
        transaction (a manifest read + write); breaking is a
        crash-recovery path, not a scheduling mechanism.

    Examples
    --------
    >>> import numpy as np, tempfile
    >>> store = ChunkStore(tempfile.mkdtemp(), encoding="float64")
    >>> entry = store.put("abc123", np.ones((2, 3)))
    >>> bool(np.array_equal(store.get("abc123"), np.ones((2, 3))))
    True
    """

    def __init__(
        self,
        root: "str | os.PathLike",
        encoding: str = "float64",
        *,
        lock_timeout: float = 10.0,
        stale_lock_seconds: float = 30.0,
    ):
        if encoding not in CHUNK_ENCODINGS:
            raise ValueError(
                f"unknown chunk encoding {encoding!r}; expected one of {CHUNK_ENCODINGS}"
            )
        self.root = os.fspath(root)
        self.encoding = str(encoding)
        self.lock_timeout = float(lock_timeout)
        self.stale_lock_seconds = float(stale_lock_seconds)
        self._lock = threading.Lock()
        self._manifest_path = os.path.join(self.root, "manifest.json")
        self._lock_path = os.path.join(self.root, "manifest.lock")
        os.makedirs(os.path.join(self.root, "chunks"), exist_ok=True)
        self._chunks: dict[str, dict] = {}
        self._manifest_token: "tuple | None" = None
        with self._lock:
            if os.path.exists(self._manifest_path):
                self._refresh_locked(count=False)
            else:
                # Create the empty manifest through the same transaction
                # path as every other mutation, so two processes racing
                # to initialise one root serialise cleanly.
                self._commit_locked(lambda chunks: None)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def lossless(self) -> bool:
        """Whether ``get`` returns bit-identical arrays (float64 encoding)."""
        return self.encoding == "float64"

    def __len__(self) -> int:
        with self._lock:
            return len(self._chunks)

    def __contains__(self, address: str) -> bool:
        address = str(address)
        with self._lock:
            if address in self._chunks:
                return True
            # A miss may just mean another process committed since our
            # last load; one cheap stat settles it.
            self._refresh_locked()
            return address in self._chunks

    def addresses(self) -> list[str]:
        """Every stored chunk address, sorted."""
        with self._lock:
            return sorted(self._chunks)

    # ------------------------------------------------------------------ #
    # The cross-process commit protocol
    # ------------------------------------------------------------------ #
    def _shard_path(self, address: str) -> str:
        return os.path.join(self.root, "chunks", address[:2], f"{address}.npz")

    @contextlib.contextmanager
    def _flock_locked(self):
        """Hold ``manifest.lock`` (O_CREAT|O_EXCL) for one transaction.

        Bounded wait: raises ``TimeoutError`` after ``lock_timeout``
        seconds.  A lock older than ``stale_lock_seconds`` is treated as
        abandoned by a killed process and broken (counted on the
        ``chunkstore.lock_breaks`` counter).  Caller holds the thread
        lock, so one process never contends with itself.
        """
        deadline = _deadline_clock() + self.lock_timeout
        while True:
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                break
            except FileExistsError:
                if self._break_stale_lock_locked():
                    continue
                if _deadline_clock() >= deadline:
                    raise TimeoutError(
                        f"timed out after {self.lock_timeout:.1f}s waiting for "
                        f"chunk-store lock {self._lock_path}; if its holder is "
                        f"dead it will be broken once it is "
                        f"{self.stale_lock_seconds:.1f}s old"
                    )
                time.sleep(_LOCK_POLL_SECONDS)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"{os.getpid()}\n")
            yield
        finally:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self._lock_path)

    def _break_stale_lock_locked(self) -> bool:
        """Remove ``manifest.lock`` if its holder looks dead; True if removed.

        Staleness is mtime age: live holders create-and-release within a
        single JSON round-trip, so a lock older than
        ``stale_lock_seconds`` belongs to a killed process.  The unlink
        races other breakers benignly (``FileNotFoundError`` means
        someone else already broke it).
        """
        try:
            age = _now() - os.stat(self._lock_path).st_mtime
        except FileNotFoundError:
            return True  # released between our open attempt and the stat
        if age <= self.stale_lock_seconds:
            return False
        with contextlib.suppress(FileNotFoundError):
            os.unlink(self._lock_path)
        counter_add("chunkstore.lock_breaks")
        return True

    def _load_chunks_locked(self) -> "dict[str, dict]":
        """The on-disk chunk mapping, strictly validated.

        A manifest that fails to parse raises — silently treating it as
        empty would let the next commit overwrite it and drop every
        entry another process had committed (dangling shards dressed as
        a clean store).
        """
        if not os.path.exists(self._manifest_path):
            return {}
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"corrupt chunk-store manifest at {self._manifest_path}: {exc}; "
                f"refusing to merge over it — restore the manifest from the "
                f"shard files (entries are content-addressed) or move it aside"
            ) from exc
        if manifest.get("schema") != _MANIFEST_SCHEMA:
            raise ValueError(
                f"unsupported chunk-store manifest schema "
                f"{manifest.get('schema')!r} at {self._manifest_path}"
            )
        if manifest.get("encoding") != self.encoding:
            raise ValueError(
                f"store at {self.root} was created with encoding "
                f"{manifest.get('encoding')!r}; reopen with that encoding "
                f"instead of {self.encoding!r}"
            )
        return dict(manifest.get("chunks", {}))

    def _dump_manifest_locked(self, chunks: "dict[str, dict]") -> None:
        """Atomically replace ``manifest.json`` (temp file + ``os.replace``).

        Lock-free readers therefore always observe a complete manifest;
        a crash mid-write leaves at worst a ``.manifest-*`` temp file,
        reclaimed by :meth:`sweep_orphans`.
        """
        manifest = {
            "schema": _MANIFEST_SCHEMA,
            "encoding": self.encoding,
            "chunks": chunks,
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".manifest-")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, sort_keys=True)
            os.replace(tmp, self._manifest_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _stat_token_locked(self) -> "tuple | None":
        """Change token of the on-disk manifest: ``(st_mtime_ns, st_size)``."""
        try:
            st = os.stat(self._manifest_path)
        except FileNotFoundError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def _commit_locked(self, mutate):
        """Run one manifest transaction; returns ``mutate``'s result.

        Caller holds the thread lock.  Acquires the cross-process
        lockfile, re-reads the on-disk manifest (authoritative while the
        lock is held — foreign commits are unioned in, foreign prunes
        stay pruned), lets ``mutate`` edit the mapping in place,
        atomically writes the result and installs it as this handle's
        in-memory view.
        """
        with self._flock_locked():
            chunks = self._load_chunks_locked()
            result = mutate(chunks)
            self._dump_manifest_locked(chunks)
            self._chunks = chunks
            self._manifest_token = self._stat_token_locked()
        return result

    def _refresh_locked(self, *, count: bool = True) -> int:
        """Reload the manifest if its stat token moved; returns new addresses.

        The token is stat'ed *before* the read, so a replace that lands
        between the two at worst marks the view one commit old — the
        next refresh reloads.  Foreign prunes are honoured: the on-disk
        mapping replaces (not merges into) the in-memory view.
        """
        token = self._stat_token_locked()
        if count and token == self._manifest_token:
            return 0
        chunks = self._load_chunks_locked()
        added = sum(1 for address in chunks if address not in self._chunks)
        self._chunks = chunks
        self._manifest_token = token
        if count:
            counter_add("chunkstore.refreshes")
        return added

    def refresh(self) -> int:
        """Pick up chunks other processes committed since our last load.

        Cheap no-op (one ``stat``) when nothing changed.  Returns the
        number of addresses that became visible.  ``get`` and ``in``
        already call this on a miss; explicit refresh is for bulk
        readers that iterate :meth:`addresses`.
        """
        with self._lock:
            return self._refresh_locked()

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #
    def _write_shard(
        self, address: str, array: np.ndarray, *, validated: bool = False
    ) -> dict:
        """Encode and write one shard file; returns its manifest entry.

        Encoding (including the non-finite rejection, unless the caller
        pre-``validated`` the array) runs before any file is created, so
        a rejected chunk leaves nothing on disk.
        """
        array = np.asarray(array, dtype=np.float64)
        payload, scale, offset, err = _encode(
            array, self.encoding, validated=validated
        )
        path = self._shard_path(address)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), prefix=".shard-")
        try:
            with os.fdopen(fd, "wb") as handle:
                if scale is None:
                    np.savez(handle, data=payload)
                else:
                    np.savez(handle, data=payload, scale=scale, offset=offset)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        entry = {
            "file": os.path.relpath(path, self.root),
            "shape": [int(s) for s in array.shape],
            "encoding": self.encoding,
            "encoded_bytes": int(payload.nbytes),
            "decoded_bytes": int(array.nbytes),
            "max_abs_error": float(err),
            "stored_at": _now(),
        }
        if scale is not None:
            entry["scale"] = float(scale)
            entry["offset"] = float(offset)
        return entry

    def _commit_entries_locked(self, staged: "dict[str, tuple]") -> int:
        """Transactionally add staged ``{address: (entry, float64 array)}``.

        First-writer-wins against foreign commits.  Each surviving entry
        re-checks its shard file inside the transaction and rewrites it
        if a concurrent ``prune``/``sweep_orphans`` unlinked it between
        our (lock-free) shard write and this commit — shards are only
        ever removed under the lock, so the re-check closes that race.
        Returns the number of entries this handle added.
        """

        def mutate(chunks: "dict[str, dict]") -> int:
            written = 0
            for address, (entry, array) in staged.items():
                if address in chunks:
                    continue  # a foreign writer of the same content won
                if not os.path.exists(self._shard_path(address)):
                    entry = self._write_shard(address, array, validated=True)
                chunks[address] = entry
                written += 1
            return written

        return self._commit_locked(mutate)

    def put(self, address: str, array: np.ndarray) -> dict:
        """Persist one chunk; returns its manifest entry.

        Idempotent: an address already in the store is left untouched
        (content addresses make re-encoding pointless), so concurrent
        writers of the same chunk cannot corrupt each other.  For many
        chunks at once prefer :meth:`put_many`, which commits the
        manifest a single time.
        """
        address = str(address)
        with self._lock:
            entry = self._chunks.get(address)
            if entry is not None:
                return dict(entry)
        array = np.asarray(array, dtype=np.float64)
        with span("chunkstore.put", bytes=array.nbytes, encoding=self.encoding):
            entry = self._write_shard(address, array)
        counter_add("chunkstore.writes")
        counter_add("chunkstore.written_bytes", array.nbytes)
        with self._lock:
            self._commit_entries_locked({address: (entry, array)})
            return dict(self._chunks[address])

    def put_many(self, chunks: "dict[str, np.ndarray]") -> int:
        """Persist a batch of chunks with one manifest transaction.

        The manifest is O(stored chunks) to serialise, so per-chunk
        commits would cost O(N^2) over a store's lifetime; the serving
        write-through path and the campaign store writer land every
        batch through this form instead.  Returns the number of chunks
        actually written (addresses already present are skipped).
        """
        with self._lock:
            pending = {
                str(address): array
                for address, array in chunks.items()
                if str(address) not in self._chunks
            }
        if not pending:
            return 0
        # Validate the whole batch before writing anything: a non-finite
        # chunk under a lossy encoding must not leave earlier chunks of
        # the same batch behind as orphan shards.  The float64 view is
        # kept and the shard writes are marked pre-validated, so no
        # chunk is converted or scanned a second time.
        pending = {
            address: np.asarray(array, dtype=np.float64)
            for address, array in pending.items()
        }
        for array in pending.values():
            _require_finite(array, self.encoding)
        batch_bytes = sum(array.nbytes for array in pending.values())
        with span(
            "chunkstore.put_many",
            n_chunks=len(pending),
            bytes=batch_bytes,
            encoding=self.encoding,
        ):
            staged = {
                address: (
                    self._write_shard(address, array, validated=True),
                    array,
                )
                for address, array in pending.items()
            }
        counter_add("chunkstore.writes", len(pending))
        counter_add("chunkstore.written_bytes", batch_bytes)
        with self._lock:
            return self._commit_entries_locked(staged)

    def get(self, address: str) -> "np.ndarray | None":
        """The decoded ``float64`` chunk, or ``None`` if absent.

        The decoded payload is validated against the manifest entry
        (shape) before it is returned; a missing, truncated or
        wrong-shape shard raises ``ValueError`` naming the shard instead
        of handing corrupt bytes to the caller.
        """
        address = str(address)
        with self._lock:
            entry = self._chunks.get(address)
            if entry is None:
                self._refresh_locked()
                entry = self._chunks.get(address)
            if entry is None:
                return None
            entry = dict(entry)
        path = os.path.join(self.root, entry["file"])
        with span("chunkstore.get", encoding=self.encoding) as sp:
            try:
                # Own the file handle: np.load(path) leaks its descriptor
                # when the zip directory is corrupt (it raises before the
                # NpzFile that would close it exists).
                with open(path, "rb") as handle, np.load(handle) as payload:
                    decoded = _decode(
                        payload["data"],
                        payload["scale"] if "scale" in payload else None,
                        payload["offset"] if "offset" in payload else None,
                    )
            except FileNotFoundError as exc:
                raise ValueError(
                    f"manifest entry for chunk {address!r} points at missing "
                    f"shard {entry['file']!r} under {self.root}; the store "
                    f"was corrupted outside the commit protocol (shards are "
                    f"only unlinked after their entries are removed)"
                ) from exc
            except (zipfile.BadZipFile, OSError, KeyError) as exc:
                raise ValueError(
                    f"shard {entry['file']!r} for chunk {address!r} under "
                    f"{self.root} is unreadable ({exc}); the file is "
                    f"truncated or corrupt — remove the entry and re-put "
                    f"the chunk"
                ) from exc
            sp.set(bytes=decoded.nbytes)
        expected = tuple(int(s) for s in entry["shape"])
        if decoded.shape != expected:
            raise ValueError(
                f"shard {entry['file']!r} for chunk {address!r} decodes to "
                f"shape {tuple(decoded.shape)} but its manifest entry "
                f"records {expected}; the shard and manifest disagree — "
                f"remove the entry and re-put the chunk"
            )
        counter_add("chunkstore.reads")
        counter_add("chunkstore.read_bytes", decoded.nbytes)
        return decoded

    def entry(self, address: str) -> "dict | None":
        """The manifest entry of a chunk (shape, bytes, error), or ``None``."""
        with self._lock:
            entry = self._chunks.get(str(address))
            return dict(entry) if entry is not None else None

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def prune(
        self,
        *,
        max_bytes: "int | None" = None,
        max_age: "float | None" = None,
        now: "float | None" = None,
    ) -> dict:
        """Drop stored chunks by age and/or an encoded-byte budget.

        ``max_age`` removes every chunk whose ``stored_at`` timestamp is
        more than that many seconds before ``now`` (entries written by
        pre-GC stores carry no timestamp and count as infinitely old).
        ``max_bytes`` then evicts oldest-first — deterministically, ties
        broken by address — until the surviving encoded bytes fit the
        budget.  ``now`` defaults to the wall clock; tests pass it
        explicitly.

        One transaction: the shrunk manifest is committed durably
        *before* any shard file is unlinked, and the unlinks happen
        while the cross-process lock is still held — a crash mid-prune
        strands orphan shards (reclaimed by :meth:`sweep_orphans`),
        never a manifest entry pointing at a missing shard.

        Returns ``{"pruned_chunks", "pruned_bytes", "remaining_chunks",
        "remaining_bytes"}``.
        """
        if max_bytes is None and max_age is None:
            raise ValueError("prune() needs max_bytes=, max_age=, or both")
        if now is None:
            now = _now()
        with self._lock, self._flock_locked():
            chunks = self._load_chunks_locked()
            doomed: dict[str, dict] = {}
            if max_age is not None:
                cutoff = float(now) - float(max_age)
                for address, entry in chunks.items():
                    if float(entry.get("stored_at", float("-inf"))) < cutoff:
                        doomed[address] = entry
            if max_bytes is not None:
                survivors = [
                    (float(entry.get("stored_at", float("-inf"))), address)
                    for address, entry in chunks.items()
                    if address not in doomed
                ]
                total = sum(
                    int(chunks[address]["encoded_bytes"])
                    for _, address in survivors
                )
                for _, address in sorted(survivors):
                    if total <= int(max_bytes):
                        break
                    doomed[address] = chunks[address]
                    total -= int(chunks[address]["encoded_bytes"])
            kept = {
                address: entry
                for address, entry in chunks.items()
                if address not in doomed
            }
            self._dump_manifest_locked(kept)
            self._chunks = kept
            self._manifest_token = self._stat_token_locked()
            # Entries are durably gone; now the shards. Still under the
            # lock, so no writer can commit against a path mid-unlink.
            for entry in doomed.values():
                with contextlib.suppress(FileNotFoundError):
                    os.unlink(os.path.join(self.root, entry["file"]))
            remaining_bytes = sum(
                int(entry["encoded_bytes"]) for entry in kept.values()
            )
        pruned_bytes = sum(
            int(entry["encoded_bytes"]) for entry in doomed.values()
        )
        counter_add("chunkstore.pruned_chunks", len(doomed))
        counter_add("chunkstore.pruned_bytes", pruned_bytes)
        return {
            "pruned_chunks": len(doomed),
            "pruned_bytes": pruned_bytes,
            "remaining_chunks": len(kept),
            "remaining_bytes": remaining_bytes,
        }

    def sweep_orphans(self, *, grace_seconds: float = 3600.0) -> int:
        """Reclaim unreferenced shards and stale temp files; returns count.

        Orphans are the deliberate crash residue of the commit protocol:
        a shard written whose commit never happened, a shard stranded by
        a crash mid-``prune``, or a ``.manifest-*``/``.shard-*`` temp
        file from a torn write.  Only files older than ``grace_seconds``
        (mtime) are touched — the grace window must exceed the longest
        gap between a writer's shard write and its manifest commit,
        which is why the default is generous.  Runs as one transaction
        under the cross-process lock, against the authoritative on-disk
        manifest.
        """
        removed = 0
        cutoff = _now() - float(grace_seconds)
        with self._lock, self._flock_locked():
            chunks = self._load_chunks_locked()
            self._chunks = chunks
            self._manifest_token = self._stat_token_locked()
            referenced = {
                os.path.normpath(os.path.join(self.root, entry["file"]))
                for entry in chunks.values()
            }
            keep = {
                os.path.normpath(self._manifest_path),
                os.path.normpath(self._lock_path),
            }
            for dirpath, _, filenames in os.walk(self.root):
                for filename in filenames:
                    path = os.path.normpath(os.path.join(dirpath, filename))
                    if path in referenced or path in keep:
                        continue
                    is_shard = filename.endswith(".npz")
                    is_tmp = filename.startswith((".shard-", ".manifest-"))
                    if not (is_shard or is_tmp):
                        continue
                    try:
                        if os.stat(path).st_mtime >= cutoff:
                            continue
                        os.unlink(path)
                    except FileNotFoundError:
                        continue
                    removed += 1
        counter_add("chunkstore.orphans_swept", removed)
        return removed

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _max_abs_error_locked(self) -> float:
        """Deterministic maximum over per-chunk errors, NaN included.

        ``max()`` over floats is order-dependent in the presence of NaN
        (``max(1.0, nan) == 1.0`` but ``max(nan, 1.0)`` is NaN), and a
        manifest written before non-finite chunks were rejected can
        carry ``max_abs_error: nan`` entries.  Any NaN entry makes the
        store-wide error unknown, so NaN is returned — deterministically,
        whatever the manifest iteration order.
        """
        errors = [float(e["max_abs_error"]) for e in self._chunks.values()]
        if not errors:
            return 0.0
        if any(math.isnan(err) for err in errors):
            return float("nan")
        return max(errors)

    def max_abs_error(self) -> float:
        """Largest measured reconstruction error across stored chunks.

        Exactly ``0.0`` for a lossless (float64) store; the quantized
        tier's honest error bound otherwise.  NaN — deterministically,
        regardless of manifest order — when a pre-existing manifest
        carries a corrupt ``max_abs_error: nan`` entry (written before
        non-finite chunks were rejected): the store-wide bound is then
        unknown, and pretending otherwise would hide the corruption.
        """
        with self._lock:
            return self._max_abs_error_locked()

    def stats(self) -> dict:
        """Store observability: chunk count, byte totals, encoding, error.

        ``max_abs_error`` follows :meth:`max_abs_error`'s NaN contract:
        a corrupt pre-existing manifest entry yields NaN, never an
        order-dependent value.
        """
        with self._lock:
            encoded = sum(int(e["encoded_bytes"]) for e in self._chunks.values())
            decoded = sum(int(e["decoded_bytes"]) for e in self._chunks.values())
            err = self._max_abs_error_locked()
            return {
                "root": self.root,
                "encoding": self.encoding,
                "lossless": self.lossless,
                "n_chunks": len(self._chunks),
                "encoded_bytes": encoded,
                "decoded_bytes": decoded,
                "compression_factor": decoded / encoded if encoded else float("inf"),
                "max_abs_error": err,
            }
