"""On-demand emulation serving.

The serving layer answers *requests for fields* instead of commands to
emulate: a frozen, content-addressed :class:`FieldRequest` names what is
wanted (scenario, realization, year range, optional spatial window) and
:class:`EmulationService` serves it from the cheapest tier that has it —
an in-process bytes-capped LRU of model-year chunks, an optional
persistent :class:`~repro.storage.chunkstore.ChunkStore`, or synthesis
through the batched streaming path (single-flight + same-scenario
coalescing).  ``repro.serve(...)`` on the facade builds a service in one
call.
"""

from repro.serving.request import FieldRequest, chunk_address
from repro.serving.service import DEFAULT_CACHE_BYTES, EmulationService

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "EmulationService",
    "FieldRequest",
    "chunk_address",
]
