"""Request model of the on-demand emulation service.

A :class:`FieldRequest` is the frozen unit the service trades in: *which
field does the caller want?*  It names a forcing scenario (registered name
or :class:`~repro.scenarios.spec.ScenarioSpec`), a realization index, a
half-open model-year range and an optional spatial window, and it
**canonicalizes** to a deterministic content-address: every spelling of
the same request — scenario alias vs primary name vs the resolved spec —
hashes to the same hex digest, so caches, stores and logs can key on the
address alone.

Two address granularities exist on purpose:

* :meth:`FieldRequest.address` — the full request (scenario, realization,
  years, window, nugget).  One address = one exact served array.
* :meth:`FieldRequest.stream_address` + :func:`chunk_address` — the
  synthesis stream the request draws from.  Chunks are cached per
  ``(stream, realization, year)`` and shared by every request shape that
  touches that year, whatever its year span or window.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.core.window import SpatialWindow
from repro.scenarios.registry import resolve_scenario, resolve_scenario_state
from repro.scenarios.spec import ScenarioSpec

__all__ = ["FieldRequest", "chunk_address"]

#: Canonical-state schema version, folded into every address so a future
#: layout change can never collide with old addresses.
ADDRESS_SCHEMA = 1


def _digest(payload: dict) -> str:
    """Deterministic hex digest of a JSON-able payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def chunk_address(stream_address: str, realization: int, year: int) -> str:
    """Content-address of one model-year chunk of one synthesis stream.

    The triple ``(stream, realization, year)`` fully determines the
    chunk's bits (see :class:`~repro.serving.service.EmulationService`'s
    determinism contract), so the address is usable as a cache key, a
    store shard name and a cross-process identity all at once.
    """
    return _digest({
        "schema": ADDRESS_SCHEMA,
        "kind": "chunk",
        "stream": str(stream_address),
        "realization": int(realization),
        "year": int(year),
    })


@dataclass(frozen=True)
class FieldRequest:
    """A frozen, content-addressable request for an emulated field.

    Parameters
    ----------
    scenario:
        Registered scenario name (aliases allowed) or a
        :class:`~repro.scenarios.spec.ScenarioSpec`.  Names resolve at
        ``start_level``; all spellings of one pathway share one address.
    realization:
        Realization index ``r >= 0``.  The service draws realization
        ``r`` from ``np.random.SeedSequence(seed, spawn_key=(r,))`` — the
        same stream campaign run ``r`` of a single-scenario campaign
        would use.
    year_start / year_stop:
        Half-open model-year range ``[year_start, year_stop)`` relative
        to emulation year 0.  ``year_stop=None`` means one year.
    window:
        Optional :class:`~repro.core.window.SpatialWindow` cut out of the
        full-grid field at assembly time.
    include_nugget:
        Include the truncation nugget (part of the stream identity: the
        nugget interleaves with the innovation draws).
    start_level:
        Baseline forcing used when ``scenario`` is a bare name; ignored
        for explicit specs.

    Examples
    --------
    >>> FieldRequest("ssp-high", realization=2, year_start=0,
    ...              year_stop=3).n_years
    3
    >>> FieldRequest("ssp-high").address() == FieldRequest("ssp5-8.5").address()
    True
    """

    scenario: "str | ScenarioSpec"
    realization: int = 0
    year_start: int = 0
    year_stop: "int | None" = None
    window: "SpatialWindow | None" = None
    include_nugget: bool = True
    start_level: float = 2.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "realization", int(self.realization))
        object.__setattr__(self, "year_start", int(self.year_start))
        stop = self.year_start + 1 if self.year_stop is None else int(self.year_stop)
        object.__setattr__(self, "year_stop", stop)
        object.__setattr__(self, "include_nugget", bool(self.include_nugget))
        object.__setattr__(self, "start_level", float(self.start_level))
        if not isinstance(self.scenario, (str, ScenarioSpec)):
            raise TypeError(
                f"scenario must be a name or a ScenarioSpec, "
                f"got {type(self.scenario).__name__}"
            )
        if self.realization < 0:
            raise ValueError(f"realization must be >= 0, got {self.realization}")
        if self.year_start < 0:
            raise ValueError(f"year_start must be >= 0, got {self.year_start}")
        if self.year_stop <= self.year_start:
            raise ValueError(
                f"year range [{self.year_start}, {self.year_stop}) is empty"
            )
        if self.window is not None and not isinstance(self.window, SpatialWindow):
            raise TypeError(
                f"window must be a SpatialWindow, got {type(self.window).__name__}"
            )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def n_years(self) -> int:
        """Number of requested model years."""
        return self.year_stop - self.year_start

    @property
    def years(self) -> range:
        """The requested model years, ``year_start .. year_stop - 1``."""
        return range(self.year_start, self.year_stop)

    def resolve_spec(self) -> ScenarioSpec:
        """The resolved scenario spec (names looked up at ``start_level``)."""
        return resolve_scenario(self.scenario, start_level=self.start_level)

    # ------------------------------------------------------------------ #
    # Canonicalization
    # ------------------------------------------------------------------ #
    def stream_state(self) -> dict:
        """Canonical state of the synthesis stream the request draws from.

        Everything that shapes the stream's random-draw schedule —
        the resolved scenario and the nugget flag — and nothing that
        merely *selects* from it (years, window, realization; the
        realization enters at the chunk level instead, see
        :func:`chunk_address`).
        """
        return {
            "schema": ADDRESS_SCHEMA,
            "kind": "stream",
            "scenario": resolve_scenario_state(self.scenario, self.start_level),
            "include_nugget": self.include_nugget,
        }

    def stream_address(self) -> str:
        """Hex content-address of the synthesis stream family."""
        return _digest(self.stream_state())

    def chunk_addresses(self) -> dict[int, str]:
        """Mapping ``year -> chunk address`` for every requested year."""
        stream = self.stream_address()
        return {
            year: chunk_address(stream, self.realization, year)
            for year in self.years
        }

    def canonical_state(self) -> dict:
        """The full canonical request state (JSON-able, address input)."""
        return {
            "schema": ADDRESS_SCHEMA,
            "kind": "request",
            "stream": self.stream_state(),
            "realization": self.realization,
            "year_start": self.year_start,
            "year_stop": self.year_stop,
            "window": self.window.state_dict() if self.window is not None else None,
        }

    def address(self) -> str:
        """Deterministic hex content-address of the whole request.

        Equal for every spelling of the same request: scenario aliases,
        primary names and the resolved spec all canonicalize identically,
        and field order cannot matter (keys are sorted before hashing).
        """
        return _digest(self.canonical_state())
