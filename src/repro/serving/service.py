"""The on-demand emulation service.

:class:`EmulationService` turns a fitted emulator artifact into a field
*server*: callers hand it frozen :class:`~repro.serving.request.FieldRequest`
objects and get back the requested array, synthesized only when no tier
already holds it.  Three tiers answer a request, cheapest first:

1. an in-process, bytes-capped LRU of model-year chunks (full grid, one
   entry per ``(scenario, realization, year)`` content-address);
2. an optional persistent :class:`~repro.storage.chunkstore.ChunkStore`
   (read-through on miss, write-through on synthesis);
3. synthesis through :meth:`ClimateEmulator.emulate_stream
   <repro.core.emulator.ClimateEmulator.emulate_stream>` — with
   single-flight locking (concurrent identical requests compute once)
   and request coalescing (same-scenario requests pending while a
   synthesis is in flight are batched through
   :meth:`EmulationGenerator.generate_stream_multi
   <repro.core.generator.EmulationGenerator.generate_stream_multi>`).

Determinism contract
--------------------
Realization ``r`` of a scenario draws from
``np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(r,)))``
— the identical stream campaign run ``r`` of a one-scenario
:func:`repro.run_campaign` uses — and is synthesized as the **canonical
year-chunked stream**: ``emulate_stream(chunk_size=steps_per_year)``.
Year ``y`` of that stream depends only on years ``<= y`` (the draw
schedule is fixed per model year), so chunks are *prefix-compatible*:
the same year served from a short request, a long request, a resumed
stream or a coalesced batch is bit-identical.  Consequently
``service.get(request)``:

* equals ``emulator.emulate(...)`` **bit for bit** for any single-year
  request and for any request with ``include_nugget=False``;
* equals the concatenated ``emulator.emulate_stream(...)`` year chunks
  bit for bit for every request;
* is identical on the cold and cached paths (the cache stores exactly
  what synthesis produced, at full float64).

(The monolithic ``emulate`` call draws its nugget *after* all
innovations, so for multi-year nuggeted records its bits depend on the
total length — no chunk-cached server can match that shape and still
share chunks across requests; the year-chunked stream is the canonical
schedule, and it is what campaigns already write.)

A lossy (quantized) chunk store is the one opt-out: chunks served from
an ``int16``/``float32`` store carry that tier's measured
``max_abs_error`` (see ``stats()["store"]``) instead of bit-equality.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

import numpy as np

from repro.api.facade import _resolve as _resolve_emulator
from repro.core.emulator import ClimateEmulator
from repro.obs import DEFAULT_SERVING_SLOS, MetricsRegistry, evaluate_slos, mark_ready, span
from repro.serving.request import FieldRequest, chunk_address
from repro.storage.chunkstore import ChunkStore

__all__ = ["EmulationService", "DEFAULT_CACHE_BYTES"]

#: Default in-memory chunk-cache budget (bytes).
DEFAULT_CACHE_BYTES = 256 * 2**20


def _service_registry() -> MetricsRegistry:
    """A fresh per-instance metrics registry.

    :class:`~repro.obs.MetricsRegistry` carries its own internal lock,
    so hot paths count events on it without holding the service lock —
    it is a thread-safe handle, not service-lock-protected state.
    """
    return MetricsRegistry()


class _ChunkCache:
    """Bytes-capped LRU of content-addressed chunks.

    Not thread-safe on its own: every access happens under the owning
    service's lock.  Eviction may drop the entry being inserted (a cache
    smaller than one chunk); correctness never depends on retention —
    synthesis results reach waiters through the flight, not the cache.
    """

    def __init__(self, max_bytes: "int | None", metrics: MetricsRegistry):
        if max_bytes is not None and int(max_bytes) < 0:
            raise ValueError("cache_bytes must be >= 0 (or None for unlimited)")
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.bytes = 0
        # Hit/miss/eviction counts live on the owning service's metrics
        # registry; ``bytes``/``entries`` stay real state because the
        # eviction loop reads them.
        self._metrics = metrics

    def get(self, address: str) -> "np.ndarray | None":
        array = self._entries.get(address)
        if array is None:
            self._metrics.add("serving.chunk_cache.misses")
            return None
        self._entries.move_to_end(address)
        self._metrics.add("serving.chunk_cache.hits")
        return array

    def put(self, address: str, array: np.ndarray) -> None:
        if address in self._entries:
            self._entries.move_to_end(address)
            return
        self._entries[address] = array
        self.bytes += array.nbytes
        if self.max_bytes is None:
            return
        while self.bytes > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self.bytes -= evicted.nbytes
            self._metrics.add("serving.chunk_cache.evictions")

    def __contains__(self, address: str) -> bool:
        return address in self._entries

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "hits": int(self._metrics.counter("serving.chunk_cache.hits")),
            "misses": int(self._metrics.counter("serving.chunk_cache.misses")),
            "evictions": int(self._metrics.counter("serving.chunk_cache.evictions")),
        }


class _Flight:
    """One in-flight synthesis for a scenario stream family.

    ``needs`` maps ``realization -> stop_year`` ("chunks ``[0, stop)``
    must exist afterwards"); it stays open for coalescing until the
    leader snapshots it at synthesis start (``running``).  Requests that
    arrive while the leader is running pool into ``next`` — the
    successor flight whose leader waits for this one, then synthesizes
    the whole accumulated batch.
    """

    __slots__ = ("needs", "running", "done", "results", "error", "next")

    def __init__(self):
        self.needs: dict[int, int] = {}
        self.running = False
        self.done = threading.Event()
        self.results: dict[str, np.ndarray] = {}
        self.error: "BaseException | None" = None
        self.next: "_Flight | None" = None

    def covers(self, realization: int, stop: int) -> bool:
        return self.needs.get(realization, 0) >= stop


class _LiveStream:
    """A paused canonical stream, resumable at ``next_year``."""

    __slots__ = ("iterator", "next_year", "horizon")

    def __init__(self, iterator, next_year: int, horizon: int):
        self.iterator = iterator
        self.next_year = next_year
        self.horizon = horizon


class EmulationService:
    """Request-addressed field serving over a fitted emulator.

    Parameters
    ----------
    source:
        A fitted :class:`~repro.core.emulator.ClimateEmulator` or the
        path of a saved artifact.
    seed:
        Root entropy of the service.  Realization ``r`` always draws
        from ``SeedSequence(seed, spawn_key=(r,))``, so every served
        field is a pure function of ``(artifact, seed, request)``.
    cache_bytes:
        Budget of the in-memory chunk LRU (``None`` for unlimited,
        default 256 MiB).
    store:
        Optional persistent :class:`~repro.storage.chunkstore.ChunkStore`
        used read-through/write-through.  A lossless (float64) store
        preserves bit-exactness across processes; a quantized store
        trades that for 4x smaller shards and reports its measured
        ``max_abs_error``.
    stream_horizon_years:
        Minimum horizon synthesis streams are opened with.  Opening
        longer than requested costs nothing (streams are lazy) and lets
        a follow-up request for later years *resume* instead of
        restarting from year 0.  Output bits never depend on it.
    max_streams:
        How many paused streams to keep resumable (LRU; 0 disables
        resumption — every extension restarts from year 0).

    Examples
    --------
    >>> import repro                                   # doctest: +SKIP
    >>> service = repro.serve("emulator.npz", seed=0)  # doctest: +SKIP
    >>> field = service.get(repro.FieldRequest("ssp-high", realization=3,
    ...                                        year_start=0, year_stop=5))  # doctest: +SKIP
    """

    def __init__(
        self,
        source,
        *,
        seed: int = 0,
        cache_bytes: "int | None" = DEFAULT_CACHE_BYTES,
        store: "ChunkStore | None" = None,
        stream_horizon_years: int = 32,
        max_streams: int = 8,
    ):
        emulator = _resolve_emulator(source)
        if not emulator.is_fitted or emulator.training_summary is None:
            raise RuntimeError("EmulationService needs a fitted emulator")
        if store is not None and not isinstance(store, ChunkStore):
            raise TypeError(f"store must be a ChunkStore, got {type(store).__name__}")
        if int(stream_horizon_years) < 0:
            raise ValueError("stream_horizon_years must be >= 0")
        if int(max_streams) < 0:
            raise ValueError("max_streams must be >= 0")
        self._emulator = emulator
        self._summary = emulator.training_summary
        self._seed = int(seed)
        self._store = store
        self._stream_horizon_years = int(stream_horizon_years)
        self._max_streams = int(max_streams)
        if isinstance(source, (str, os.PathLike)):
            self._artifact_bytes = os.path.getsize(os.fspath(source))
        else:
            self._artifact_bytes = emulator.measured_artifact_bytes()

        self._lock = threading.Lock()
        # Every counter of this service lives on a per-instance metrics
        # registry (two services never conflate counts); ``stats()`` is
        # the back-compat view over it.
        self._metrics = _service_registry()
        self._cache = _ChunkCache(cache_bytes, self._metrics)
        self._flights: dict[str, _Flight] = {}
        self._streams: "OrderedDict[tuple[str, int], _LiveStream]" = OrderedDict()
        # A constructed service can answer requests, so the process's
        # /readyz (repro.obs.export) flips to ready here.
        mark_ready("serving")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def emulator(self) -> ClimateEmulator:
        """The fitted emulator being served (treat as read-only)."""
        return self._emulator

    @property
    def grid(self):
        """The served spatial grid."""
        return self._summary.grid

    @property
    def steps_per_year(self) -> int:
        """Time steps per model year (the chunk granularity)."""
        return int(self._summary.steps_per_year)

    @property
    def seed(self) -> int:
        """Root entropy; realization ``r`` uses spawn key ``(r,)``."""
        return self._seed

    @property
    def metrics(self) -> MetricsRegistry:
        """This service's metrics registry (:meth:`stats` is a view over it)."""
        return self._metrics

    def stats(self) -> dict:
        """Hit/miss/bytes/synthesis counters across every tier.

        ``synthesis["flights"]`` counts synthesis passes: N concurrent
        identical requests increment it once (single flight), and
        same-scenario requests coalesced into one batch also increment
        it once (``batched_flights`` / ``coalesced_realizations`` break
        that down).
        """
        metrics = self._metrics

        def count(name: str) -> int:
            return int(metrics.counter(name))

        with self._lock:
            summary = {
                "seed": self._seed,
                "steps_per_year": self.steps_per_year,
                "artifact_bytes": self._artifact_bytes,
                "requests": count("serving.requests"),
                "request_hits": count("serving.request_hits"),
                "request_misses": count("serving.request_misses"),
                "served_bytes": count("serving.served_bytes"),
                "store_chunk_hits": count("serving.store_chunk_hits"),
                "chunk_cache": self._cache.stats(),
                "synthesis": {
                    "flights": count("serving.synthesis.flights"),
                    "batched_flights": count("serving.synthesis.batched_flights"),
                    "coalesced_realizations": count(
                        "serving.synthesis.coalesced_realizations"
                    ),
                    "coalesced_waits": count("serving.synthesis.coalesced_waits"),
                    "chunks": count("serving.synthesis.chunks"),
                    "seconds": metrics.counter("serving.synthesis.seconds"),
                    "stream_resumes": count("serving.synthesis.stream_resumes"),
                    "live_streams": len(self._streams),
                },
            }
        store = self._store
        summary["store"] = store.stats() if store is not None else None
        return summary

    def slo_report(self, slos=None) -> dict:
        """Evaluate serving SLOs against recorded latency histograms.

        ``slos`` defaults to :data:`repro.obs.DEFAULT_SERVING_SLOS`
        (p99 of ``serve.get.seconds`` under 50 ms).  Span histograms
        live in the process-wide registry — ``serve.get.seconds`` is
        recorded by the ``serve.get`` span around every :meth:`get` —
        so the report is evaluated there, not against this instance's
        counter registry.  Returns the
        :func:`repro.obs.evaluate_slos` report
        (``{"ok", "violations", "slos"}``).
        """
        return evaluate_slos(DEFAULT_SERVING_SLOS if slos is None else slos)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def get(self, request: FieldRequest) -> np.ndarray:
        """Serve one request; synthesizes only what no tier already holds.

        Returns
        -------
        numpy.ndarray
            ``float64`` of shape ``(n_years * steps_per_year, nlat,
            nlon)`` — the windowed shape when the request carries a
            window, the full grid otherwise.  A fresh array the caller
            may mutate freely.  Bit-identical on cold and cached paths;
            see the module docstring for the exact ``emulate``
            equivalences.
        """
        if not isinstance(request, FieldRequest):
            raise TypeError(
                f"expected a FieldRequest, got {type(request).__name__}"
            )
        if request.window is not None:
            request.window.validate_for(self.grid)
        spec = request.resolve_spec()
        stream_addr = request.stream_address()
        addresses = {
            year: chunk_address(stream_addr, request.realization, year)
            for year in request.years
        }
        self._metrics.add("serving.requests")
        with span(
            "serve.get",
            scenario=request.scenario,
            realization=request.realization,
            years=len(addresses),
        ) as sp:
            chunks: dict[int, np.ndarray] = {}
            first_pass = True
            while True:
                missing = self._collect(addresses, chunks)
                if first_pass:
                    first_pass = False
                    outcome = "miss" if missing else "hit"
                    self._metrics.add(
                        "serving.request_misses" if missing
                        else "serving.request_hits"
                    )
                    sp.set(outcome=outcome)
                if not missing:
                    result = self._assemble(request, chunks)
                    sp.set(bytes=result.nbytes)
                    return result
                role, flight, predecessor = self._join(
                    stream_addr, request.realization, max(missing) + 1
                )
                if role == "lead":
                    self._run_flight(
                        flight, stream_addr, spec, request.include_nugget
                    )
                elif role == "lead_after":
                    predecessor.done.wait()
                    self._run_flight(
                        flight, stream_addr, spec, request.include_nugget
                    )
                else:
                    self._metrics.add("serving.synthesis.coalesced_waits")
                    flight.done.wait()
                if flight.error is not None:
                    raise RuntimeError(
                        f"chunk synthesis failed for stream {stream_addr[:12]}..."
                    ) from flight.error
                for year, address in addresses.items():
                    if year not in chunks and address in flight.results:
                        chunks[year] = flight.results[address]
                # Anything still missing (a need that arrived after the
                # leader's snapshot, or an eviction race) is retried: the
                # next loop iteration re-checks every tier and, if
                # needed, joins or leads a fresh flight.

    # ------------------------------------------------------------------ #
    # Tier lookups
    # ------------------------------------------------------------------ #
    def _collect(
        self, addresses: dict[int, str], chunks: dict[int, np.ndarray]
    ) -> list[int]:
        """Fill ``chunks`` from cache then store; returns missing years."""
        pending: list[int] = []
        with self._lock:
            for year, address in addresses.items():
                if year in chunks:
                    continue
                array = self._cache.get(address)
                if array is not None:
                    chunks[year] = array
                else:
                    pending.append(year)
        store = self._store
        if store is None or not pending:
            return sorted(pending)
        missing: list[int] = []
        for year in sorted(pending):
            array = store.get(addresses[year])  # disk read, outside the lock
            if array is None:
                missing.append(year)
                continue
            array.setflags(write=False)
            chunks[year] = array
            self._metrics.add("serving.store_chunk_hits")
            with self._lock:
                self._cache.put(addresses[year], array)
        return missing

    def _assemble(self, request: FieldRequest, chunks: dict[int, np.ndarray]) -> np.ndarray:
        fields = np.concatenate([chunks[year] for year in request.years], axis=0)
        if request.window is not None:
            fields = np.ascontiguousarray(request.window.extract(fields))
        self._metrics.add("serving.served_bytes", fields.nbytes)
        return fields

    # ------------------------------------------------------------------ #
    # Single-flight / coalescing
    # ------------------------------------------------------------------ #
    def _join(
        self, stream_addr: str, realization: int, stop: int
    ) -> "tuple[str, _Flight, _Flight | None]":
        """Join or create the flight covering ``chunks [0, stop)`` of ``r``.

        Returns ``(role, flight, predecessor)`` with role ``"lead"``
        (synthesize now), ``"lead_after"`` (synthesize once
        ``predecessor`` finishes — the coalescing window: needs pooling
        into this flight while the predecessor runs become one batch) or
        ``"wait"`` (an existing flight already covers the need).
        """
        with self._lock:
            head = self._flights.get(stream_addr)
            if head is None:
                flight = _Flight()
                flight.needs[realization] = stop
                self._flights[stream_addr] = flight
                return "lead", flight, None
            if not head.running:
                # Pending flight (its leader is about to run, or is a
                # successor waiting on its predecessor): still open.
                head.needs[realization] = max(head.needs.get(realization, 0), stop)
                return "wait", head, None
            if head.covers(realization, stop):
                return "wait", head, None
            successor = head.next
            if successor is None:
                successor = head.next = _Flight()
                successor.needs[realization] = stop
                return "lead_after", successor, head
            successor.needs[realization] = max(
                successor.needs.get(realization, 0), stop
            )
            return "wait", successor, None

    def _run_flight(
        self, flight: _Flight, stream_addr: str, spec, include_nugget: bool
    ) -> None:
        """Leader path: snapshot needs, synthesize, publish, hand over."""
        with self._lock:
            flight.running = True
            needs = dict(flight.needs)
        flight_span = span(
            "serve.flight", stream=stream_addr[:12], realizations=len(needs)
        )
        results: dict[str, np.ndarray] = {}
        try:
            with flight_span:
                results = self._synthesize(
                    stream_addr, spec, include_nugget, needs
                )
                flight_span.set(chunks=len(results))
        except BaseException as error:
            flight.error = error
            raise
        finally:
            metrics = self._metrics
            metrics.add("serving.synthesis.flights")
            metrics.add("serving.synthesis.chunks", len(results))
            metrics.add("serving.synthesis.seconds", flight_span.elapsed())
            if len(needs) > 1:
                metrics.add("serving.synthesis.batched_flights")
                metrics.add(
                    "serving.synthesis.coalesced_realizations", len(needs) - 1
                )
            with self._lock:
                for address, array in results.items():
                    self._cache.put(address, array)
                flight.results = results
                if self._flights.get(stream_addr) is flight:
                    if flight.next is not None:
                        self._flights[stream_addr] = flight.next
                    else:
                        del self._flights[stream_addr]
            # Waiters are released before the write-through: they read
            # flight.results from memory, so persistence I/O (one batched
            # manifest write) never sits on their latency path.
            flight.done.set()
            store = self._store
            if store is not None and results:
                store.put_many(results)

    # ------------------------------------------------------------------ #
    # Synthesis
    # ------------------------------------------------------------------ #
    def _realization_rng(self, realization: int) -> np.random.Generator:
        seq = np.random.SeedSequence(self._seed, spawn_key=(int(realization),))
        return np.random.default_rng(seq)

    def _missing_jobs(
        self, stream_addr: str, needs: dict[int, int]
    ) -> "dict[int, tuple[int, int]]":
        """Per realization: ``(first_missing_year, stop)`` of real gaps."""
        store = self._store
        jobs: dict[int, tuple[int, int]] = {}
        for realization, stop in sorted(needs.items()):
            first_missing = None
            for year in range(stop):
                address = chunk_address(stream_addr, realization, year)
                with self._lock:
                    cached = address in self._cache
                if cached or (store is not None and address in store):
                    continue
                first_missing = year
                break
            if first_missing is not None:
                jobs[realization] = (first_missing, stop)
        return jobs

    def _synthesize(
        self, stream_addr: str, spec, include_nugget: bool, needs: dict[int, int]
    ) -> dict[str, np.ndarray]:
        """Produce every missing chunk implied by ``needs``.

        One realization with a resumable live stream continues from its
        pause point; everything else synthesizes the canonical stream
        from year 0.  Multiple realizations are stacked through the
        batched multi-stream path (one VAR recursion + inverse SHT per
        chunk for the whole batch), bit-identical per member to the
        serial stream.
        """
        jobs = self._missing_jobs(stream_addr, needs)
        if not jobs:
            return {}
        if len(jobs) > 1:
            return self._synthesize_batch(stream_addr, spec, include_nugget, jobs)
        (realization, (first_missing, stop)), = jobs.items()
        return self._synthesize_single(
            stream_addr, spec, include_nugget, realization, first_missing, stop
        )

    def _open_stream(self, spec, include_nugget: bool, realization: int, horizon: int):
        forcing = spec.annual_forcing(horizon)
        spy = self.steps_per_year
        iterator = self._emulator.emulate_stream(
            n_realizations=1,
            n_times=horizon * spy,
            annual_forcing=forcing,
            rng=self._realization_rng(realization),
            include_nugget=include_nugget,
            chunk_size=spy,
        )
        return _LiveStream(iterator, next_year=0, horizon=horizon)

    def _synthesize_single(
        self,
        stream_addr: str,
        spec,
        include_nugget: bool,
        realization: int,
        first_missing: int,
        stop: int,
    ) -> dict[str, np.ndarray]:
        key = (stream_addr, realization)
        with self._lock:
            live = self._streams.pop(key, None)
        if (
            live is not None
            and live.next_year <= first_missing
            and live.horizon >= stop
        ):
            self._metrics.add("serving.synthesis.stream_resumes")
        else:
            horizon = max(stop, self._stream_horizon_years)
            live = self._open_stream(spec, include_nugget, realization, horizon)
        results: dict[str, np.ndarray] = {}
        while live.next_year < stop:
            chunk = next(live.iterator)
            array = np.ascontiguousarray(chunk.data[0])
            array.setflags(write=False)
            results[chunk_address(stream_addr, realization, live.next_year)] = array
            live.next_year += 1
        if live.next_year < live.horizon and self._max_streams > 0:
            with self._lock:
                self._streams[key] = live
                self._streams.move_to_end(key)
                while len(self._streams) > self._max_streams:
                    self._streams.popitem(last=False)
        return results

    def _synthesize_batch(
        self,
        stream_addr: str,
        spec,
        include_nugget: bool,
        jobs: "dict[int, tuple[int, int]]",
    ) -> dict[str, np.ndarray]:
        realizations = sorted(jobs)
        horizon = max(stop for _, stop in jobs.values())
        spy = self.steps_per_year
        forcing = spec.annual_forcing(horizon)
        rngs = [self._realization_rng(r) for r in realizations]
        stream = self._emulator.generator().generate_stream_multi(
            rngs,
            n_times=horizon * spy,
            annual_forcing=forcing,
            include_nugget=include_nugget,
            start_year=self._summary.start_year,
            chunk_size=spy,
        )
        results: dict[str, np.ndarray] = {}
        for year, chunk in enumerate(stream):
            for member, realization in enumerate(realizations):
                array = np.ascontiguousarray(chunk.data[member])
                array.setflags(write=False)
                results[chunk_address(stream_addr, realization, year)] = array
        return results
