"""Analytic performance model of the mixed-precision tile Cholesky at scale.

The paper's headline numbers (Figures 5-8, Table I) are achieved Flop/s of
a tile Cholesky factorisation on thousands of GPUs.  Those machines are not
available here, so the benchmark harness uses a calibrated analytic model
with the classical structure of distributed dense factorisations:

``T = T_compute + T_comm + T_latency``

* ``T_compute`` — the ``n^3/3`` operations split across precisions
  according to the tile policy (band fractions evaluated in closed form),
  each precision running at the GPU's peak rate scaled by a per-precision
  kernel efficiency (tensor-core kernels reach a smaller fraction of their
  much higher peak than DP kernels do);
* ``T_comm`` — the 2D-distribution communication volume
  ``~ n^2 * bytes / sqrt(P)`` per GPU at the injection bandwidth, with the
  element size set by the wire precision (which is where the sender- versus
  receiver-side conversion choice enters);
* ``T_latency`` — panel-broadcast start-up costs
  ``~ n_tiles * log2(P) * alpha``, inflated in the bandwidth-first
  collective mode (Section III-C).

The model is *calibrated for shape, not absolute agreement*: the recorded
constants reproduce the paper's orderings and ratios (DP < DP/SP <
DP/SP/HP < DP/HP, the ~2x / ~3x / ~5x Summit speedups, flat weak scaling,
strong-scaling efficiency ordering, and the cross-system ranking of
Table I) within a reasonable margin.

Estimates are returned as the shared
:class:`~repro.tuning.costmodel.CostEstimate` currency (``workers`` =
GPUs here), so paper-scale projections and local campaign tuning speak
one prediction type; scaling series are plain estimate lists normalised
by :func:`~repro.tuning.costmodel.scaling_efficiencies`.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.flops import cholesky_flops
from repro.linalg.policies import variant_policy
from repro.linalg.precision import Precision
from repro.runtime.machine import CollectivePriority, ConversionSide, MachineSpec
from repro.tuning.costmodel import CostEstimate

__all__ = [
    "CholeskyPerformanceModel",
    "band_flop_fraction",
]


def band_flop_fraction(n_tiles: int, band_tiles: float) -> float:
    """Fraction of Cholesky update flops within ``band_tiles`` of the diagonal.

    The update (GEMM/SYRK) flops of tile ``(i, j)`` are proportional to
    ``j + 1``; summing over the band ``|i - j| < w`` and normalising by the
    total gives the closed-form fraction used to split flops between
    precisions for a band policy.
    """
    if n_tiles < 1:
        return 1.0
    w = int(np.clip(np.ceil(band_tiles), 0, n_tiles))
    d = np.arange(0, n_tiles, dtype=np.float64)
    inner = (n_tiles - d) * (n_tiles - d + 1.0) / 2.0
    total = float(inner.sum())
    if total <= 0:
        return 1.0
    return float(inner[:w].sum() / total)


#: Fraction of peak a tuned tile kernel achieves at each precision.  Half-
#: precision tensor-core kernels have a far higher peak but need very large
#: tiles to approach it, hence the lower efficiency.
DEFAULT_KERNEL_EFFICIENCY: dict[Precision, float] = {
    Precision.DOUBLE: 0.80,
    Precision.SINGLE: 0.80,
    Precision.HALF: 0.30,
}

#: Per-GPU-family calibration of the reduced-precision kernel efficiencies.
#: The values are chosen so the DP/HP per-GPU rates of Table I are matched
#: (V100 ~25, A100 ~57, GH200 ~94, MI250X ~55 TFlop/s per GPU): newer, wider
#: tensor cores deliver a smaller fraction of their much larger peak for this
#: non-AI workload, and Frontier/Alps additionally stage communication
#: through the host (no GPU-aware MPI yet, per Section V-C).
GPU_FAMILY_EFFICIENCY: dict[str, dict[Precision, float]] = {
    "V100": {Precision.DOUBLE: 0.80, Precision.SINGLE: 0.80, Precision.HALF: 0.30},
    "A100": {Precision.DOUBLE: 0.80, Precision.SINGLE: 0.35, Precision.HALF: 0.22},
    "GH200": {Precision.DOUBLE: 0.80, Precision.SINGLE: 0.16, Precision.HALF: 0.105},
    "H100": {Precision.DOUBLE: 0.80, Precision.SINGLE: 0.16, Precision.HALF: 0.105},
    "MI250X": {Precision.DOUBLE: 0.80, Precision.SINGLE: 0.55, Precision.HALF: 0.16},
}


def _family_efficiency(gpu_name: str) -> dict[Precision, float]:
    """Calibrated kernel efficiencies for a GPU, by name lookup."""
    for family, table in GPU_FAMILY_EFFICIENCY.items():
        if family.lower() in gpu_name.lower():
            return dict(table)
    return dict(DEFAULT_KERNEL_EFFICIENCY)


class CholeskyPerformanceModel:
    """Closed-form performance model of the tile Cholesky on a machine.

    Parameters
    ----------
    machine:
        Target system.
    tile_size:
        Tile edge length ``nb`` (the paper uses O(1000)-sized tiles).
    kernel_efficiency:
        Per-precision fraction-of-peak factors; defaults to
        :data:`DEFAULT_KERNEL_EFFICIENCY`.
    conversion:
        Sender- or receiver-side precision conversion (affects wire bytes).
    collective_priority:
        Latency-first (the paper's improved mode) or bandwidth-first
        collective handling (affects the latency term).
    comm_volume_factor / latency_messages_factor:
        Dimensionless calibration constants of the communication terms.
    """

    def __init__(
        self,
        machine: MachineSpec,
        tile_size: int = 2048,
        kernel_efficiency: dict[Precision, float] | None = None,
        conversion: ConversionSide | str = ConversionSide.SENDER,
        collective_priority: CollectivePriority | str = CollectivePriority.LATENCY,
        comm_volume_factor: float = 0.7,
        latency_messages_factor: float = 3.0,
        bisection_contention_gpus: float = 20_000.0,
    ) -> None:
        self.machine = machine
        self.tile_size = int(tile_size)
        self.kernel_efficiency = _family_efficiency(machine.node.gpu.name)
        if kernel_efficiency:
            self.kernel_efficiency.update(kernel_efficiency)
        self.conversion = ConversionSide(conversion)
        self.collective_priority = CollectivePriority(collective_priority)
        self.comm_volume_factor = comm_volume_factor
        self.latency_messages_factor = latency_messages_factor
        self.bisection_contention_gpus = bisection_contention_gpus

    # ------------------------------------------------------------------ #
    # Precision bookkeeping
    # ------------------------------------------------------------------ #
    def flop_fractions(self, matrix_size: int, variant: str) -> dict[Precision, float]:
        """Fraction of factorisation flops executed at each precision."""
        n_tiles = max(int(np.ceil(matrix_size / self.tile_size)), 1)
        policy = variant_policy(variant)
        key = variant.strip().upper().replace(" ", "")
        if key == "DP":
            return {Precision.DOUBLE: 1.0}
        dp_frac = band_flop_fraction(n_tiles, 1)
        if key == "DP/SP":
            return {Precision.DOUBLE: dp_frac, Precision.SINGLE: 1.0 - dp_frac}
        if key == "DP/HP":
            return {Precision.DOUBLE: dp_frac, Precision.HALF: 1.0 - dp_frac}
        if key == "DP/SP/HP":
            sp_frac = band_flop_fraction(n_tiles, 1 + 0.05 * n_tiles) - dp_frac
            return {
                Precision.DOUBLE: dp_frac,
                Precision.SINGLE: max(sp_frac, 0.0),
                Precision.HALF: max(1.0 - dp_frac - sp_frac, 0.0),
            }
        # Custom policies: fall back to tile fractions of the policy.
        fractions = policy.fractions(n_tiles)
        return {p: f for p, f in fractions.items() if f > 0}

    def wire_bytes_per_element(self, matrix_size: int, variant: str) -> float:
        """Average bytes per communicated element under the conversion mode."""
        fractions = self.flop_fractions(matrix_size, variant)
        if self.conversion is ConversionSide.RECEIVER:
            # Panels are produced in (mostly) double precision and shipped
            # unconverted.
            return float(Precision.DOUBLE.bytes_per_element)
        return float(
            sum(p.bytes_per_element * f for p, f in fractions.items())
        )

    # ------------------------------------------------------------------ #
    # Core estimate
    # ------------------------------------------------------------------ #
    def estimate(
        self, matrix_size: int, nodes: int, variant: str = "DP/HP"
    ) -> CostEstimate:
        """Predict the factorisation performance for one configuration.

        Returns a :class:`~repro.tuning.costmodel.CostEstimate` whose
        ``workers`` is the allocation's GPU count and whose label names
        the system, variant and matrix order.
        """
        if nodes < 1:
            raise ValueError("nodes must be positive")
        allocation = self.machine.subset(min(nodes, self.machine.total_nodes))
        gpus = allocation.total_gpus
        gpu = allocation.node.gpu
        n = float(matrix_size)
        total_flops = cholesky_flops(matrix_size)
        fractions = self.flop_fractions(matrix_size, variant)

        compute = 0.0
        for precision, fraction in fractions.items():
            rate = gpu.rate(precision.value) * 1.0e9 * self.kernel_efficiency[precision]
            compute += total_flops * fraction / (rate * gpus)

        bytes_per_element = self.wire_bytes_per_element(matrix_size, variant)
        injection_per_gpu = (
            allocation.node.injection_bandwidth_gbs
            * 1.0e9
            / allocation.node.gpus_per_node
        )
        # At very large GPU counts the global traffic of the panel
        # broadcasts starts contending for bisection bandwidth; the achieved
        # per-GPU bandwidth degrades accordingly.
        contention = 1.0 + gpus / self.bisection_contention_gpus
        comm_volume_per_gpu = (
            self.comm_volume_factor * n * n * bytes_per_element / np.sqrt(gpus)
        )
        comm = comm_volume_per_gpu * contention / injection_per_gpu

        n_tiles = max(int(np.ceil(matrix_size / self.tile_size)), 1)
        alpha = allocation.network_latency_us * 1.0e-6
        if self.collective_priority is CollectivePriority.BANDWIDTH:
            alpha *= 4.0
        latency = (
            self.latency_messages_factor * n_tiles * np.log2(max(gpus, 2)) * alpha
        )

        return CostEstimate(
            label=f"{allocation.name} {variant} n={matrix_size}",
            workers=gpus,
            compute_s=float(compute),
            comm_s=float(comm),
            latency_s=float(latency),
            flops=total_flops,
        )

    def fraction_of_dp_peak(self, estimate: CostEstimate) -> float:
        """An estimate's achieved rate as a fraction of its allocation's DP peak.

        The allocation is recovered from the estimate's worker (GPU)
        count; GPU counts produced by :meth:`estimate` are always whole
        node multiples.
        """
        nodes = max(
            int(np.ceil(estimate.workers / self.machine.node.gpus_per_node)), 1
        )
        peak = self.machine.subset(nodes).theoretical_peak_pflops("fp64")
        return estimate.pflops / peak if peak > 0 else 0.0

    # ------------------------------------------------------------------ #
    # Derived studies
    # ------------------------------------------------------------------ #
    def memory_bound_matrix_size(
        self,
        nodes: int,
        fill_fraction: float = 0.8,
        bytes_per_element: float = 2.5,
    ) -> int:
        """Largest matrix order fitting the allocation's GPU memory.

        The paper sizes its largest runs by maxing out device memory
        including runtime buffers.  Only the lower triangle is stored and
        most tiles sit at reduced precision under the DP/HP policy, hence
        the default of ~2.5 bytes per element of the triangle;
        ``fill_fraction`` accounts for runtime buffers and workspace.
        """
        allocation = self.machine.subset(nodes)
        usable = allocation.total_gpu_memory_gb() * 1.0e9 * fill_fraction
        # reprolint: allow[index-recovery] analytic sizing heuristic on floats, not an exact index/band-limit recovery
        return int(np.sqrt(2.0 * usable / bytes_per_element))

    def weak_scaling(
        self,
        gpu_counts: list[int],
        variant: str = "DP/HP",
        elements_per_gpu: float | None = None,
    ) -> list[CostEstimate]:
        """Constant-memory-per-GPU scaling series (paper Fig. 7 left).

        One estimate per GPU count; normalise with
        :func:`~repro.tuning.costmodel.scaling_efficiencies`.
        """
        if elements_per_gpu is None:
            per_gpu_bytes = self.machine.node.gpu.memory_gb * 1.0e9 * 0.5
            elements_per_gpu = per_gpu_bytes / 8.0
        estimates = []
        for g in gpu_counts:
            nodes = max(1, int(np.ceil(g / self.machine.node.gpus_per_node)))
            # reprolint: allow[index-recovery] analytic sizing heuristic on floats, not an exact index/band-limit recovery
            n = int(np.sqrt(elements_per_gpu * g))
            estimates.append(self.estimate(n, nodes, variant))
        return estimates

    def strong_scaling(
        self,
        matrix_size: int,
        gpu_counts: list[int],
        variant: str = "DP/HP",
    ) -> list[CostEstimate]:
        """Fixed-problem-size scaling series (paper Fig. 7 right).

        One estimate per GPU count; normalise with
        :func:`~repro.tuning.costmodel.scaling_efficiencies`.
        """
        estimates = []
        for g in gpu_counts:
            nodes = max(1, int(np.ceil(g / self.machine.node.gpus_per_node)))
            estimates.append(self.estimate(matrix_size, nodes, variant))
        return estimates
