"""Machine catalogue and performance models for the four target systems.

The paper's performance study spans Frontier (AMD MI250X), Alps (NVIDIA
GH200), Leonardo (NVIDIA A100) and Summit (NVIDIA V100).  None of these is
available here, so the benchmark harness combines

* :mod:`repro.systems.catalog` — machine descriptions assembled from the
  paper's Section IV-D and public hardware specifications, and
* :mod:`repro.systems.perf_model` — a calibrated analytic performance model
  of the tile mixed-precision Cholesky, returning the same
  :class:`~repro.tuning.costmodel.CostEstimate` currency the local
  autotuning planner uses,

to regenerate the *shape* of Figures 5-8 and Table I: which precision
variant wins, by what factor, how weak/strong scaling behaves and where the
systems rank relative to each other.
"""

from repro.systems.catalog import (
    ALPS,
    FRONTIER,
    LEONARDO,
    SUMMIT,
    SYSTEMS,
    get_system,
)
from repro.systems.perf_model import CholeskyPerformanceModel

__all__ = [
    "ALPS",
    "CholeskyPerformanceModel",
    "FRONTIER",
    "LEONARDO",
    "SUMMIT",
    "SYSTEMS",
    "get_system",
]
