"""Catalogue of the four systems used in the paper's evaluation.

Hardware attributes are taken from the paper's Section IV-D descriptions
and public specification sheets.  The per-precision peak rates follow the
relative speed factors the paper quotes (V100: SP/HP 2x/16x faster than DP;
A100: 16x/32x; H100: 14.7x/29.5x — i.e. the reduced-precision figures are
tensor-core rates), which is what matters for the mixed-precision
performance model.
"""

from __future__ import annotations

from repro.runtime.machine import GPUSpec, MachineSpec, NodeSpec

__all__ = [
    "V100",
    "A100",
    "GH200",
    "MI250X",
    "SUMMIT",
    "LEONARDO",
    "ALPS",
    "FRONTIER",
    "SYSTEMS",
    "get_system",
    "PAPER_NODE_COUNTS",
]


# --------------------------------------------------------------------------- #
# GPUs (rates in GFlop/s)
# --------------------------------------------------------------------------- #
V100 = GPUSpec(
    name="NVIDIA V100 (SXM2 16GB)",
    fp64_gflops=7_800.0,
    fp32_gflops=15_700.0,
    fp16_gflops=125_000.0,
    memory_gb=16.0,
)

A100 = GPUSpec(
    name="NVIDIA A100 (SXM4 64GB)",
    fp64_gflops=19_500.0,
    fp32_gflops=156_000.0,
    fp16_gflops=312_000.0,
    memory_gb=64.0,
)

GH200 = GPUSpec(
    name="NVIDIA GH200 (H100 96GB)",
    fp64_gflops=34_000.0,
    fp32_gflops=494_000.0,
    fp16_gflops=989_000.0,
    memory_gb=96.0,
)

MI250X = GPUSpec(
    name="AMD MI250X (MCM, 128GB)",
    fp64_gflops=47_900.0,
    fp32_gflops=95_700.0,
    fp16_gflops=383_000.0,
    memory_gb=128.0,
)


# --------------------------------------------------------------------------- #
# Systems
# --------------------------------------------------------------------------- #
SUMMIT = MachineSpec(
    name="Summit",
    node=NodeSpec(
        name="Summit node (2x POWER9 + 6x V100)",
        gpu=V100,
        gpus_per_node=6,
        injection_bandwidth_gbs=25.0,
        intra_node_bandwidth_gbs=50.0,
        host_memory_gb=512.0,
    ),
    total_nodes=4_608,
    network_latency_us=3.0,
    network_bandwidth_gbs=25.0,
    topology="fat-tree (EDR IB)",
    top500_rank=9,
    peak_pflops_fp64=200.79,
)

LEONARDO = MachineSpec(
    name="Leonardo",
    node=NodeSpec(
        name="Leonardo booster node (4x A100 64GB)",
        gpu=A100,
        gpus_per_node=4,
        injection_bandwidth_gbs=50.0,
        intra_node_bandwidth_gbs=200.0,
        host_memory_gb=512.0,
    ),
    total_nodes=3_456,
    network_latency_us=2.5,
    network_bandwidth_gbs=50.0,
    topology="dragonfly+ (HDR IB)",
    top500_rank=7,
    peak_pflops_fp64=306.31,
)

ALPS = MachineSpec(
    name="Alps",
    node=NodeSpec(
        name="Alps Grace-Hopper supernode (4x GH200)",
        gpu=GH200,
        gpus_per_node=4,
        injection_bandwidth_gbs=100.0,
        intra_node_bandwidth_gbs=450.0,
        host_memory_gb=512.0,
    ),
    total_nodes=2_688,
    network_latency_us=2.0,
    network_bandwidth_gbs=100.0,
    topology="dragonfly (Slingshot-11)",
    top500_rank=6,
    peak_pflops_fp64=353.75,
)

FRONTIER = MachineSpec(
    name="Frontier",
    node=NodeSpec(
        name="Frontier node (4x MI250X)",
        gpu=MI250X,
        gpus_per_node=4,
        injection_bandwidth_gbs=100.0,
        intra_node_bandwidth_gbs=200.0,
        host_memory_gb=512.0,
    ),
    total_nodes=9_472,
    network_latency_us=2.0,
    network_bandwidth_gbs=100.0,
    topology="dragonfly (Slingshot-11)",
    top500_rank=1,
    peak_pflops_fp64=1_710.0,
)


#: All systems keyed by lower-case name.
SYSTEMS: dict[str, MachineSpec] = {
    "summit": SUMMIT,
    "leonardo": LEONARDO,
    "alps": ALPS,
    "frontier": FRONTIER,
}

#: Node counts used for the paper's largest runs (Fig. 8) and Table I.
PAPER_NODE_COUNTS: dict[str, dict[str, int]] = {
    "largest_run": {"frontier": 9_025, "alps": 1_936, "summit": 3_072, "leonardo": 1_024},
    "table1": {"frontier": 1_024, "alps": 1_024, "summit": 1_024, "leonardo": 1_024},
}


def get_system(name: str) -> MachineSpec:
    """Look up a system by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in SYSTEMS:
        raise KeyError(f"unknown system {name!r}; known: {sorted(SYSTEMS)}")
    return SYSTEMS[key]
