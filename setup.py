"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that the
package can be installed editable in offline environments where the PEP 517
editable path is unavailable (``pip install -e . --no-build-isolation
--no-use-pep517``).
"""
from setuptools import setup

setup()
